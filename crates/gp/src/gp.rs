//! Single-task Gaussian-process regression with marginal-likelihood
//! hyperparameter optimization.
//!
//! This is the surrogate model behind the non-transfer tuner (`NoTLA`),
//! the per-task models of the weighted-sum TLA algorithms, and the
//! residual models of the Vizier-style stacking algorithm.

use crate::kernel::{DimKind, Kernel, KernelKind, KernelParams, SqDists};
use crowdtune_linalg::{lbfgs, Cholesky, LbfgsOptions, LbfgsResult, Matrix};
use crowdtune_obs as obs;
use rand::Rng;
use rayon::prelude::*;

/// Hyperparameter bounds in log space (sane for y standardized to unit
/// variance over the unit cube).
const LOG_LS_MIN: f64 = -4.6; // ls >= 0.01
const LOG_LS_MAX: f64 = 2.31; // ls <= 10
const LOG_SF2_MIN: f64 = -9.2; // sf2 >= 1e-4
const LOG_SF2_MAX: f64 = 4.6; // sf2 <= 100
const LOG_NOISE_MIN: f64 = -18.4; // sn2 >= 1e-8
const LOG_NOISE_MAX: f64 = 0.0; // sn2 <= 1

/// Candidates per block in [`Gp::predict_batch`]: sized so the `V` and
/// `K*` working set (`2 · n · block · 8` bytes at typical `n`) stays
/// cache-resident during the triangular sweep.
const PREDICT_BLOCK: usize = 256;

/// Noise-variance treatment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// Noise variance fixed at the given value (in standardized-y units).
    Fixed(f64),
    /// Noise variance estimated by maximum marginal likelihood, starting
    /// from the given value.
    Estimated(f64),
}

/// Configuration for fitting a [`Gp`].
#[derive(Debug, Clone)]
pub struct GpConfig {
    /// Kernel family.
    pub kernel: KernelKind,
    /// Per-dimension kinds (continuous vs categorical distance).
    pub dims: Vec<DimKind>,
    /// Noise model.
    pub noise: NoiseModel,
    /// Number of random restarts beyond the default start.
    pub restarts: usize,
    /// L-BFGS iteration cap per restart.
    pub max_opt_iter: usize,
    /// Run restarts in parallel. The result is bitwise identical to the
    /// sequential path at any thread count: all starts are drawn from
    /// the RNG up front and the winner is reduced in start order.
    pub parallel: bool,
}

impl GpConfig {
    /// Reasonable defaults: Matérn 5/2, estimated noise, two restarts.
    pub fn new(dims: Vec<DimKind>) -> Self {
        GpConfig {
            kernel: KernelKind::Matern52,
            dims,
            noise: NoiseModel::Estimated(1e-2),
            restarts: 2,
            max_opt_iter: 60,
            parallel: true,
        }
    }

    /// All-continuous convenience constructor.
    pub fn continuous(dim: usize) -> Self {
        Self::new(vec![DimKind::Continuous; dim])
    }
}

/// Errors from GP fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// No training points were provided.
    EmptyTrainingSet,
    /// A training target was NaN or infinite.
    NonFiniteTarget,
    /// Input dimensionality differed from the configuration.
    DimensionMismatch {
        /// Dimension the configuration expects.
        expected: usize,
        /// Dimension found in the data.
        got: usize,
    },
    /// The covariance matrix could not be factorized at any jitter level.
    NumericalFailure,
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::EmptyTrainingSet => write!(f, "GP requires at least one training point"),
            GpError::NonFiniteTarget => write!(f, "GP training targets must be finite"),
            GpError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "GP input dimension mismatch: expected {expected}, got {got}"
                )
            }
            GpError::NumericalFailure => write!(f, "GP covariance factorization failed"),
        }
    }
}

impl std::error::Error for GpError {}

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct Gp {
    kernel: Kernel,
    log_noise: f64,
    x: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Cholesky,
    /// `L^{-1}`, precomputed at fit time so the posterior variance is
    /// `sf2 - ||L^{-1} k*||^2` — independent triangular dot products
    /// that pipeline, instead of a loop-carried triangular solve per
    /// query point.
    linv: Matrix,
    /// Standardized training targets, kept so incremental updates can
    /// re-solve `alpha` in O(n²) and recompute the NLL in closed form.
    ys: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    lml: f64,
}

/// A posterior prediction: mean and standard deviation of the latent
/// function (noise-free), in original y units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Posterior mean.
    pub mean: f64,
    /// Posterior standard deviation of the latent function.
    pub std: f64,
}

impl Gp {
    /// Fit a GP to `(x, y)` where each `x[i]` lives in the unit cube.
    ///
    /// Hyperparameters are chosen by maximizing the log marginal
    /// likelihood with analytic gradients, multi-start L-BFGS.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[f64],
        config: &GpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        Self::fit_with_starts(x, y, config, rng, &[])
    }

    /// [`Gp::fit`] with extra L-BFGS starts prepended before the default
    /// start — the warm-start entry point for incremental refits. Each
    /// extra start must have the fit's θ layout
    /// (`[kernel hypers..., log_noise?]`); mismatched lengths are
    /// skipped. The multistart winner is still reduced in start order,
    /// so determinism at any thread count is unchanged.
    pub fn fit_with_starts<R: Rng>(
        x: &[Vec<f64>],
        y: &[f64],
        config: &GpConfig,
        rng: &mut R,
        extra_starts: &[Vec<f64>],
    ) -> Result<Self, GpError> {
        let fit_span = obs::span(obs::names::SPAN_GP_FIT);
        let n = x.len();
        if n == 0 {
            return Err(GpError::EmptyTrainingSet);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteTarget);
        }
        let d = config.dims.len();
        for xi in x {
            if xi.len() != d {
                return Err(GpError::DimensionMismatch {
                    expected: d,
                    got: xi.len(),
                });
            }
        }

        // Standardize the targets.
        let y_mean = crowdtune_linalg::stats::mean(y);
        let mut y_std = crowdtune_linalg::stats::std_dev(y);
        if y_std.is_nan() || y_std <= 1e-12 {
            y_std = 1.0;
        }
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let kernel0 = Kernel::new(config.kernel, config.dims.clone());
        let (fixed_noise, init_log_noise) = match config.noise {
            NoiseModel::Fixed(v) => (true, v.max(1e-12).ln()),
            NoiseModel::Estimated(v) => (false, v.max(1e-12).ln()),
        };

        // theta layout: [kernel hypers..., log_noise?]
        let n_kernel = kernel0.n_hyper();
        let theta_len = n_kernel + usize::from(!fixed_noise);

        // Pairwise squared distances are θ-independent: compute them once
        // per fit and share them across every objective evaluation of
        // every restart.
        let sq = kernel0.precompute_sq_dists(x);

        let objective = |theta: &[f64]| -> (f64, Vec<f64>) {
            let mut kern = kernel0.clone();
            kern.unpack(&theta[..n_kernel]);
            let log_noise = if fixed_noise {
                init_log_noise
            } else {
                theta[n_kernel]
            };
            if out_of_bounds(theta, n_kernel, fixed_noise) {
                return (f64::INFINITY, vec![0.0; theta.len()]);
            }
            match nlml_with_grad(&kern, log_noise, &sq, &ys) {
                Some((nlml, mut grad)) => {
                    if fixed_noise {
                        grad.truncate(n_kernel);
                    }
                    (nlml, grad)
                }
                None => (f64::INFINITY, vec![0.0; theta.len()]),
            }
        };

        // Multi-start: warm starts (if any), the default start, then
        // `restarts` random starts.
        let mut starts: Vec<Vec<f64>> =
            Vec::with_capacity(extra_starts.len() + config.restarts + 1);
        starts.extend(
            extra_starts
                .iter()
                .filter(|s| s.len() == theta_len)
                .cloned(),
        );
        let mut default_start = vec![0.0; theta_len];
        // Default lengthscale ~ 0.3 of the cube, sf2 = 1.
        for ls in default_start.iter_mut().take(d) {
            *ls = (0.3f64).ln();
        }
        default_start[d] = 0.0;
        if !fixed_noise {
            default_start[n_kernel] = init_log_noise;
        }
        starts.push(default_start);
        for _ in 0..config.restarts {
            let mut s = vec![0.0; theta_len];
            for (i, si) in s.iter_mut().enumerate() {
                *si = if i < d {
                    rng.gen_range(LOG_LS_MIN * 0.5..LOG_LS_MAX * 0.5)
                } else if i == d {
                    rng.gen_range(-2.0..2.0)
                } else {
                    rng.gen_range(LOG_NOISE_MIN * 0.5..LOG_NOISE_MAX)
                };
            }
            starts.push(s);
        }

        let opts = LbfgsOptions {
            max_iter: config.max_opt_iter,
            ..Default::default()
        };
        let Some((nlml, theta)) = run_multistart(&starts, objective, &opts, config.parallel) else {
            obs::count(obs::names::CTR_FIT_FALLBACKS, 1);
            obs::record_with(|| obs::Event::Fit {
                model: "gp".to_string(),
                points: n as u64,
                restarts: starts.len() as u64,
                nll: None,
                duration_us: fit_span.elapsed_ns() / 1_000,
                fallback: true,
            });
            return Err(GpError::NumericalFailure);
        };
        obs::record_with(|| obs::Event::Fit {
            model: "gp".to_string(),
            points: n as u64,
            restarts: starts.len() as u64,
            nll: obs::finite(nlml),
            duration_us: fit_span.elapsed_ns() / 1_000,
            fallback: false,
        });

        let mut kernel = kernel0;
        kernel.unpack(&theta[..n_kernel]);
        let log_noise = if fixed_noise {
            init_log_noise
        } else {
            theta[n_kernel]
        };
        let k = build_covariance(&kernel, log_noise, x);
        let chol = Cholesky::robust(&k).map_err(|_| GpError::NumericalFailure)?;
        let alpha = chol.solve_vec(&ys);
        let linv = chol.inverse_lower();

        Ok(Gp {
            kernel,
            log_noise,
            x: x.to_vec(),
            alpha,
            chol,
            linv,
            ys,
            y_mean,
            y_std,
            lml: -nlml,
        })
    }

    /// Construct a GP with explicitly-given hyperparameters (no
    /// optimization). Used for pseudo-sample surrogates and in tests.
    pub fn with_hypers(
        kernel: Kernel,
        log_noise: f64,
        x: &[Vec<f64>],
        y: &[f64],
    ) -> Result<Self, GpError> {
        if x.is_empty() {
            return Err(GpError::EmptyTrainingSet);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteTarget);
        }
        let y_mean = crowdtune_linalg::stats::mean(y);
        let mut y_std = crowdtune_linalg::stats::std_dev(y);
        if y_std.is_nan() || y_std <= 1e-12 {
            y_std = 1.0;
        }
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let k = build_covariance(&kernel, log_noise, x);
        let chol = Cholesky::robust(&k).map_err(|_| GpError::NumericalFailure)?;
        let alpha = chol.solve_vec(&ys);
        let linv = chol.inverse_lower();
        let n = x.len() as f64;
        let lml = -0.5 * crowdtune_linalg::dot(&ys, &alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln();
        Ok(Gp {
            kernel,
            log_noise,
            x: x.to_vec(),
            alpha,
            chol,
            linv,
            ys,
            y_mean,
            y_std,
            lml,
        })
    }

    /// Absorb one new observation with a rank-1 Cholesky append instead
    /// of a full refit: O(n²) total (forward substitution for the new
    /// factor row, inverse-factor extension, and an `alpha` re-solve)
    /// versus the O(n³) rebuild.
    ///
    /// Hyperparameters and the target standardization stay **frozen** at
    /// their last-fit values, so the updated model is exactly the model
    /// a full rebuild at the current θ would produce (see
    /// [`Gp::refit_at_current_hypers`]) up to rounding. The caller is
    /// expected to schedule genuine refits; on numerical failure of the
    /// append (jitter ladder exhausted) the model is left unchanged and
    /// the caller should fall back to a full refit.
    pub fn update(&mut self, xnew: &[f64], ynew: f64) -> Result<(), GpError> {
        if !ynew.is_finite() {
            return Err(GpError::NonFiniteTarget);
        }
        let d = self.kernel.dim();
        if xnew.len() != d {
            return Err(GpError::DimensionMismatch {
                expected: d,
                got: xnew.len(),
            });
        }
        let params = self.kernel.params();
        let sn2 = self.log_noise.exp();
        let mut k_new = vec![0.0; self.x.len()];
        for (k, xi) in k_new.iter_mut().zip(self.x.iter()) {
            *k = self.kernel.eval_params(xnew, xi, &params);
        }
        let k_diag = self.kernel.eval_params(xnew, xnew, &params) + sn2;
        // Same jitter ceiling policy as `Cholesky::robust`, scaled by the
        // appended diagonal.
        let max_jitter = 1e-4 * k_diag.abs().max(1e-12);
        let mut chol = self.chol.clone();
        chol.append_row(&k_new, k_diag, max_jitter)
            .map_err(|_| GpError::NumericalFailure)?;
        self.linv = chol.extend_inverse_lower(&self.linv);
        self.chol = chol;
        self.x.push(xnew.to_vec());
        self.ys.push((ynew - self.y_mean) / self.y_std);
        self.alpha = self.chol.solve_vec(&self.ys);
        let n = self.ys.len() as f64;
        self.lml = -0.5 * crowdtune_linalg::dot(&self.ys, &self.alpha)
            - 0.5 * self.chol.log_det()
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln();
        Ok(())
    }

    /// Rebuild the covariance, factor, and `alpha` from scratch at the
    /// **current** hyperparameters and the current (frozen) target
    /// standardization. This is the reference the incremental append
    /// path is equivalent to, and the fallback when an append fails.
    pub fn refit_at_current_hypers(&mut self) -> Result<(), GpError> {
        let k = build_covariance(&self.kernel, self.log_noise, &self.x);
        let chol = Cholesky::robust(&k).map_err(|_| GpError::NumericalFailure)?;
        self.alpha = chol.solve_vec(&self.ys);
        self.linv = chol.inverse_lower();
        let n = self.ys.len() as f64;
        self.lml = -0.5 * crowdtune_linalg::dot(&self.ys, &self.alpha)
            - 0.5 * chol.log_det()
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln();
        self.chol = chol;
        Ok(())
    }

    /// Negative log marginal likelihood in **raw** (unstandardized) y
    /// units: `-lml + n·ln(y_std)`. Comparable across models fitted with
    /// different target standardizations, which the incremental refit
    /// schedule needs when it weighs a frozen-standardization model
    /// against a freshly restandardized fit.
    pub fn nll_raw(&self) -> f64 {
        -self.lml + self.ys.len() as f64 * self.y_std.ln()
    }

    /// The fit's θ vector (`[kernel hypers..., log_noise?]`), suitable as
    /// a warm start for [`Gp::fit_with_starts`] under the same noise
    /// model. Pass `fixed_noise = true` to omit the noise coordinate.
    pub fn pack_theta(&self, fixed_noise: bool) -> Vec<f64> {
        let mut theta = self.kernel.pack();
        if !fixed_noise {
            theta.push(self.log_noise);
        }
        theta
    }

    /// Posterior prediction at a unit-cube point.
    pub fn predict(&self, xstar: &[f64]) -> Prediction {
        let params = self.kernel.params();
        let mut kstar = vec![0.0; self.x.len()];
        self.fill_kstar(xstar, &params, &mut kstar);
        self.posterior_from_kstar(&kstar, &params)
    }

    /// Batch prediction: hoists the θ-dependent kernel constants once,
    /// assembles the cross-covariance block-wise, and computes all
    /// variances with one triangular axpy sweep per block (`V = L⁻¹K*`
    /// vectorized across candidates). Entry `j` is bitwise identical to
    /// `self.predict(&xs[j])`: every scalar result accumulates in the
    /// same order as the per-point path.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        let m = xs.len();
        if m == 0 {
            return Vec::new();
        }
        let n = self.x.len();
        let params = self.kernel.params();
        let threads = rayon::current_num_threads();
        let process_block = |block: &[Vec<f64>]| -> Vec<Prediction> {
            let b = block.len();
            let mut kt = Matrix::zeros(n, b);
            let mut means = vec![0.0; b];
            let mut kstar = vec![0.0; n];
            for (j, x) in block.iter().enumerate() {
                self.fill_kstar(x, &params, &mut kstar);
                means[j] = crowdtune_linalg::dot(&kstar, &self.alpha);
                for (k, &ks) in kstar.iter().enumerate() {
                    kt[(k, j)] = ks;
                }
            }
            // V[i][j] accumulates L⁻¹[i][k]·k*[k][j] over ascending k,
            // exactly the per-point order, but the inner axpy runs
            // across the whole candidate block.
            let mut v = Matrix::zeros(n, b);
            for i in 0..n {
                let li = self.linv.row(i);
                let vi = v.row_mut(i);
                for (k, &c) in li.iter().enumerate().take(i + 1) {
                    for (o, &s) in vi.iter_mut().zip(kt.row(k)) {
                        *o += c * s;
                    }
                }
            }
            let mut qf = vec![0.0; b];
            for i in 0..n {
                for (q, &val) in qf.iter_mut().zip(v.row(i)) {
                    *q += val * val;
                }
            }
            means
                .iter()
                .zip(&qf)
                .map(|(&mean_s, &q)| {
                    let var_s = (params.sf2 - q).max(0.0);
                    Prediction {
                        mean: self.y_mean + self.y_std * mean_s,
                        std: self.y_std * var_s.sqrt(),
                    }
                })
                .collect()
        };
        // Candidate blocks keep V and K* resident in cache; blocks are
        // independent, so thread count never changes any result.
        let blocks: Vec<&[Vec<f64>]> = xs.chunks(PREDICT_BLOCK).collect();
        let per_block: Vec<Vec<Prediction>> =
            if threads > 1 && blocks.len() >= 2 && m * n * n >= 1 << 16 {
                blocks.par_iter().map(|blk| process_block(blk)).collect()
            } else {
                blocks.iter().map(|blk| process_block(blk)).collect()
            };
        per_block.into_iter().flatten().collect()
    }

    /// Cross-covariance vector `k* = K(xstar, X)` with hoisted params.
    #[inline]
    fn fill_kstar(&self, xstar: &[f64], params: &KernelParams, kstar: &mut [f64]) {
        for (k, xi) in kstar.iter_mut().zip(self.x.iter()) {
            *k = self.kernel.eval_params(xstar, xi, params);
        }
    }

    /// Posterior mean/std from an assembled `k*`. The variance is
    /// `sf2 - ||L^{-1} k*||^2` computed against the precomputed inverse
    /// factor: independent per-row reductions instead of a loop-carried
    /// triangular solve, at half the flops of a `K^{-1}` quadratic
    /// form. Each `v_i` uses a single accumulator over ascending `k` so
    /// the result is bitwise identical to the blocked axpy sweep in
    /// [`Gp::predict_batch`].
    #[inline]
    fn posterior_from_kstar(&self, kstar: &[f64], params: &KernelParams) -> Prediction {
        let mean_s = crowdtune_linalg::dot(kstar, &self.alpha);
        let mut qf = 0.0;
        for i in 0..kstar.len() {
            let li = &self.linv.row(i)[..=i];
            let mut vi = 0.0;
            for (a, b) in li.iter().zip(&kstar[..=i]) {
                vi += a * b;
            }
            qf += vi * vi;
        }
        let var_s = (params.sf2 - qf).max(0.0);
        Prediction {
            mean: self.y_mean + self.y_std * mean_s,
            std: self.y_std * var_s.sqrt(),
        }
    }

    /// Draw one joint sample of the latent function at the query points
    /// (the "samples drawn from the trained surrogate model" of the
    /// paper's Sobol description; also the primitive behind Thompson
    /// sampling). Returns one value per query point, in original y units.
    pub fn sample_joint<R: Rng>(&self, xs: &[Vec<f64>], rng: &mut R) -> Vec<f64> {
        let m = xs.len();
        if m == 0 {
            return Vec::new();
        }
        // Posterior mean and covariance at the query points.
        let n = self.x.len();
        let mut kstar = Matrix::zeros(n, m);
        for (j, xq) in xs.iter().enumerate() {
            for (i, xi) in self.x.iter().enumerate() {
                kstar[(i, j)] = self.kernel.eval(xq, xi);
            }
        }
        let mut mean = vec![0.0; m];
        for (j, mj) in mean.iter_mut().enumerate() {
            let col = kstar.col(j);
            *mj = crowdtune_linalg::dot(&col, &self.alpha);
        }
        // Cov = K(X*,X*) - V^T V with V = L^{-1} K(X, X*).
        let mut v = Matrix::zeros(n, m);
        let mut colbuf = vec![0.0; n];
        for j in 0..m {
            for i in 0..n {
                colbuf[i] = kstar[(i, j)];
            }
            let solved = self.chol.solve_lower_vec(&colbuf);
            for i in 0..n {
                v[(i, j)] = solved[i];
            }
        }
        let mut cov = Matrix::zeros(m, m);
        for a in 0..m {
            for b in a..m {
                let mut kab = self.kernel.eval(&xs[a], &xs[b]);
                for i in 0..n {
                    kab -= v[(i, a)] * v[(i, b)];
                }
                cov[(a, b)] = kab;
                cov[(b, a)] = kab;
            }
        }
        // Sample z ~ N(0, I), return mean + L_cov z (jitter-robust).
        let z: Vec<f64> = (0..m)
            .map(|_| {
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
            })
            .collect();
        let sample_s = match Cholesky::robust(&cov) {
            Ok(ch) => {
                let l = ch.l();
                (0..m)
                    .map(|a| {
                        let mut s = mean[a];
                        for b in 0..=a {
                            s += l[(a, b)] * z[b];
                        }
                        s
                    })
                    .collect::<Vec<f64>>()
            }
            // Degenerate covariance: fall back to independent marginals.
            Err(_) => (0..m)
                .map(|a| mean[a] + cov[(a, a)].max(0.0).sqrt() * z[a])
                .collect(),
        };
        sample_s
            .into_iter()
            .map(|s| self.y_mean + self.y_std * s)
            .collect()
    }

    /// The log marginal likelihood of the fitted model (standardized y).
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The fitted log noise variance (standardized-y units).
    pub fn log_noise(&self) -> f64 {
        self.log_noise
    }

    /// Training inputs.
    pub fn train_x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Number of training points.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when the GP has no training data (never constructible; kept
    /// for API completeness).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

fn out_of_bounds(theta: &[f64], n_kernel: usize, fixed_noise: bool) -> bool {
    let d = n_kernel - 1;
    for (i, &t) in theta.iter().enumerate() {
        let (lo, hi) = if i < d {
            (LOG_LS_MIN, LOG_LS_MAX)
        } else if i == d {
            (LOG_SF2_MIN, LOG_SF2_MAX)
        } else if !fixed_noise {
            (LOG_NOISE_MIN, LOG_NOISE_MAX)
        } else {
            continue;
        };
        if t < lo || t > hi {
            return true;
        }
    }
    false
}

/// Build `K = K_f + sn2 I`.
pub(crate) fn build_covariance(kernel: &Kernel, log_noise: f64, x: &[Vec<f64>]) -> Matrix {
    let n = x.len();
    let sn2 = log_noise.exp();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval(&x[i], &x[j]);
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += sn2;
    }
    k
}

/// Run L-BFGS from every start — in parallel when requested and more
/// than one thread is available — and pick the winner exactly as the
/// sequential loop would: scan results in start order, keeping the
/// first strictly-better finite objective. Each restart is independent
/// and internally deterministic, so the parallel and sequential paths
/// return bitwise-identical winners.
pub(crate) fn run_multistart<F>(
    starts: &[Vec<f64>],
    objective: F,
    opts: &LbfgsOptions,
    parallel: bool,
) -> Option<(f64, Vec<f64>)>
where
    F: Fn(&[f64]) -> (f64, Vec<f64>) + Sync,
{
    let run = |s: &Vec<f64>| lbfgs(s, &objective, opts);
    let results: Vec<LbfgsResult> =
        if parallel && rayon::current_num_threads() > 1 && starts.len() > 1 {
            starts.par_iter().map(run).collect()
        } else {
            starts.iter().map(run).collect()
        };
    obs::count(obs::names::CTR_FIT_RESTARTS, results.len() as u64);
    if obs::journal_active() {
        // Journaled on the calling thread, in start order, so parallel and
        // sequential paths produce identical event sequences.
        for (index, res) in results.iter().enumerate() {
            obs::record_with(|| obs::Event::Restart {
                index: index as u64,
                nll: obs::finite(res.f),
                iterations: res.iterations as u64,
                stop: res.stop.as_str().to_string(),
            });
        }
    }
    let mut best: Option<(f64, Vec<f64>)> = None;
    for res in results {
        if res.f.is_finite() {
            match &best {
                Some((bf, _)) if *bf <= res.f => {}
                _ => best = Some((res.f, res.x)),
            }
        }
    }
    best
}

/// Negative log marginal likelihood and its gradient with respect to
/// `[kernel log-hypers..., log noise]`, evaluated from the fit-lifetime
/// distance cache. Returns `None` on factorization failure (treated as
/// an infeasible hyperparameter point).
fn nlml_with_grad(
    kernel: &Kernel,
    log_noise: f64,
    sq: &SqDists,
    ys: &[f64],
) -> Option<(f64, Vec<f64>)> {
    let n = sq.n();
    let p_kernel = kernel.n_hyper();
    let sn2 = log_noise.exp();
    let params = kernel.params();

    // Covariance and per-pair hyperparameter gradients, from cached
    // distances: no per-pair allocation, no per-pair hyperparameter exp.
    let mut k = Matrix::zeros(n, n);
    let mut dk: Vec<Matrix> = (0..p_kernel).map(|_| Matrix::zeros(n, n)).collect();
    let mut grad_buf = vec![0.0; p_kernel];
    for i in 0..n {
        for j in i..n {
            let v = kernel.eval_with_grad_precomputed(sq.pair(i, j), &params, &mut grad_buf);
            k[(i, j)] = v;
            k[(j, i)] = v;
            for (p, &g) in grad_buf.iter().enumerate() {
                dk[p][(i, j)] = g;
                dk[p][(j, i)] = g;
            }
        }
        k[(i, i)] += sn2;
    }

    let chol = Cholesky::robust(&k).ok()?;
    let alpha = chol.solve_vec(ys);
    let nlml = 0.5 * crowdtune_linalg::dot(ys, &alpha)
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // W = alpha alpha^T - K^{-1}; dNLML/dtheta_p = -0.5 tr(W dK/dtheta_p).
    // Materializing W once turns every trace into a single fused dot over
    // contiguous buffers instead of an O(n^2) recomputation per parameter.
    let mut w = chol.inverse();
    for i in 0..n {
        let ai = alpha[i];
        let row = w.row_mut(i);
        for (wj, &aj) in row.iter_mut().zip(alpha.iter()) {
            *wj = ai * aj - *wj;
        }
    }
    let mut grad = vec![0.0; p_kernel + 1];
    for (p, dkp) in dk.iter().enumerate() {
        grad[p] = -0.5 * crowdtune_linalg::dot(w.as_slice(), dkp.as_slice());
    }
    // Noise gradient: dK/d log sn2 = sn2 I.
    let mut tr = 0.0;
    for i in 0..n {
        tr += w[(i, i)];
    }
    grad[p_kernel] = -0.5 * sn2 * tr;

    Some((nlml, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toy_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|xi| (2.0 * std::f64::consts::PI * xi[0]).sin() * 3.0 + 5.0)
            .collect();
        (x, y)
    }

    #[test]
    fn interpolates_noise_free_data() {
        let (x, y) = toy_data(20, 1);
        let mut config = GpConfig::continuous(1);
        config.noise = NoiseModel::Fixed(1e-8);
        let mut rng = StdRng::seed_from_u64(2);
        let gp = Gp::fit(&x, &y, &config, &mut rng).unwrap();
        for (xi, yi) in x.iter().zip(&y) {
            let p = gp.predict(xi);
            assert!((p.mean - yi).abs() < 0.05, "pred {} vs {}", p.mean, yi);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let x = vec![vec![0.4], vec![0.5], vec![0.6]];
        let y = vec![1.0, 1.2, 0.9];
        let mut rng = StdRng::seed_from_u64(3);
        let gp = Gp::fit(&x, &y, &GpConfig::continuous(1), &mut rng).unwrap();
        let near = gp.predict(&[0.5]);
        let far = gp.predict(&[0.0]);
        assert!(far.std > near.std, "far {} vs near {}", far.std, near.std);
    }

    #[test]
    fn prediction_reasonable_between_points() {
        let (x, y) = toy_data(40, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let gp = Gp::fit(&x, &y, &GpConfig::continuous(1), &mut rng).unwrap();
        // True function at untrained points.
        for &t in &[0.15, 0.35, 0.77] {
            let truth = (2.0 * std::f64::consts::PI * t).sin() * 3.0 + 5.0;
            let p = gp.predict(&[t]);
            assert!(
                (p.mean - truth).abs() < 0.5,
                "at {t}: {} vs {truth}",
                p.mean
            );
        }
    }

    #[test]
    fn empty_training_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Gp::fit(&[], &[], &GpConfig::continuous(1), &mut rng);
        assert_eq!(e.unwrap_err(), GpError::EmptyTrainingSet);
    }

    #[test]
    fn non_finite_target_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Gp::fit(
            &[vec![0.5]],
            &[f64::NAN],
            &GpConfig::continuous(1),
            &mut rng,
        );
        assert_eq!(e.unwrap_err(), GpError::NonFiniteTarget);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        let e = Gp::fit(
            &[vec![0.5, 0.5]],
            &[1.0],
            &GpConfig::continuous(1),
            &mut rng,
        );
        assert!(matches!(
            e.unwrap_err(),
            GpError::DimensionMismatch {
                expected: 1,
                got: 2
            }
        ));
    }

    #[test]
    fn constant_targets_handled() {
        let x = vec![vec![0.1], vec![0.5], vec![0.9]];
        let y = vec![4.0, 4.0, 4.0];
        let mut rng = StdRng::seed_from_u64(5);
        let gp = Gp::fit(&x, &y, &GpConfig::continuous(1), &mut rng).unwrap();
        let p = gp.predict(&[0.3]);
        assert!((p.mean - 4.0).abs() < 0.2);
    }

    #[test]
    fn single_point_fit() {
        let mut rng = StdRng::seed_from_u64(5);
        let gp = Gp::fit(
            &[vec![0.5, 0.5]],
            &[2.0],
            &GpConfig::continuous(2),
            &mut rng,
        )
        .unwrap();
        let p = gp.predict(&[0.5, 0.5]);
        assert!((p.mean - 2.0).abs() < 1e-3);
    }

    #[test]
    fn with_hypers_skips_optimization() {
        let (x, y) = toy_data(10, 9);
        let kernel = Kernel::continuous(KernelKind::SquaredExponential, 1);
        let gp = Gp::with_hypers(kernel, (1e-6f64).ln(), &x, &y).unwrap();
        assert_eq!(gp.len(), 10);
        assert!(gp.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let (x, y) = toy_data(15, 11);
        let config = GpConfig::continuous(1);
        let gp1 = Gp::fit(&x, &y, &config, &mut StdRng::seed_from_u64(1)).unwrap();
        let gp2 = Gp::fit(&x, &y, &config, &mut StdRng::seed_from_u64(1)).unwrap();
        let p1 = gp1.predict(&[0.42]);
        let p2 = gp2.predict(&[0.42]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn parallel_fit_matches_serial_bitwise() {
        // Restart parallelism must not change the selected
        // hyperparameters: all starts are drawn up front and the
        // reduction scans results in start order, so a parallel fit is
        // bitwise identical to a serial one at any thread count.
        let (x, y) = toy_data(20, 7);
        let mut config = GpConfig::continuous(1);
        config.restarts = 3;
        let par = Gp::fit(&x, &y, &config, &mut StdRng::seed_from_u64(9)).unwrap();
        config.parallel = false;
        let ser = Gp::fit(&x, &y, &config, &mut StdRng::seed_from_u64(9)).unwrap();
        for q in [0.0, 0.13, 0.42, 0.77, 0.99] {
            assert_eq!(par.predict(&[q]), ser.predict(&[q]));
        }
    }

    #[test]
    fn predict_batch_matches_per_point_bitwise() {
        let (x, y) = toy_data(30, 3);
        let config = GpConfig::continuous(1);
        let gp = Gp::fit(&x, &y, &config, &mut StdRng::seed_from_u64(4)).unwrap();
        // Large enough to cross the parallel threshold on multi-core
        // machines; each entry must still be bitwise equal to the
        // per-point path.
        let qs: Vec<Vec<f64>> = (0..512).map(|i| vec![i as f64 / 512.0]).collect();
        let batch = gp.predict_batch(&qs);
        assert_eq!(batch.len(), qs.len());
        for (q, b) in qs.iter().zip(&batch) {
            assert_eq!(*b, gp.predict(q));
        }
    }

    #[test]
    fn joint_samples_track_posterior() {
        let (x, y) = toy_data(25, 31);
        let mut config = GpConfig::continuous(1);
        config.noise = NoiseModel::Fixed(1e-6);
        let mut rng = StdRng::seed_from_u64(32);
        let gp = Gp::fit(&x, &y, &config, &mut rng).unwrap();
        let qs: Vec<Vec<f64>> = vec![vec![0.2], vec![0.5], vec![0.05]];
        // Mean of many joint samples approaches the posterior mean, and
        // samples at training-adjacent points have low spread.
        let mut sums = [0.0; 3];
        let k = 200;
        for _ in 0..k {
            let s = gp.sample_joint(&qs, &mut rng);
            for (acc, v) in sums.iter_mut().zip(&s) {
                *acc += v;
            }
        }
        for (j, q) in qs.iter().enumerate() {
            let p = gp.predict(q);
            let emp_mean = sums[j] / k as f64;
            assert!(
                (emp_mean - p.mean).abs() < 0.2 + 3.0 * p.std / (k as f64).sqrt() * 3.0,
                "q{j}: emp {emp_mean} vs post {}",
                p.mean
            );
        }
        // Empty query: empty sample.
        assert!(gp.sample_joint(&[], &mut rng).is_empty());
    }

    #[test]
    fn joint_samples_are_correlated_nearby() {
        let (x, y) = toy_data(15, 33);
        let mut rng = StdRng::seed_from_u64(34);
        let gp = Gp::fit(&x, &y, &GpConfig::continuous(1), &mut rng).unwrap();
        // Two nearly identical query points must get nearly identical
        // sampled values within each draw.
        for _ in 0..20 {
            let s = gp.sample_joint(&[vec![0.31], vec![0.3101]], &mut rng);
            assert!((s[0] - s[1]).abs() < 0.2, "joint draw not smooth: {s:?}");
        }
    }

    #[test]
    fn noisy_fit_does_not_interpolate_exactly() {
        // With substantial estimated noise, the posterior mean smooths.
        let x = vec![vec![0.2], vec![0.2001], vec![0.8]];
        let y = vec![0.0, 2.0, 1.0]; // two nearly-identical inputs, very different y
        let mut rng = StdRng::seed_from_u64(21);
        let gp = Gp::fit(&x, &y, &GpConfig::continuous(1), &mut rng).unwrap();
        let p = gp.predict(&[0.2]);
        // The smoothed prediction must land strictly between the clashing targets.
        assert!(p.mean > 0.05 && p.mean < 1.95, "mean = {}", p.mean);
    }
}
