//! Amortized surrogate maintenance for the BO iteration loop.
//!
//! Each tuner iteration adds exactly one observation, yet a from-scratch
//! refit pays the full O(n³) factorization plus a multi-start L-BFGS
//! every time. [`IncrementalGp`] splits that cost:
//!
//! - most iterations absorb the new point with a rank-1 Cholesky append
//!   ([`Gp::update`], O(n²)) under frozen hyperparameters;
//! - a [`RefitSchedule`] decides when to pay for a genuine refit — every
//!   `every` updates, or earlier when the frozen model's per-point NLL
//!   degrades past a threshold;
//! - full refits warm-start L-BFGS from the previous θ and drop to a
//!   reduced restart count while the warm start keeps proving
//!   competitive. The reduction decision is computed from NLL values,
//!   never from timing or thread count, so fixed-seed runs stay
//!   deterministic at any parallelism.
//!
//! Every decision is journaled through `crowdtune-obs` as `refit` /
//! `warmstart` events.

use crowdtune_obs as obs;
use rand::Rng;

use crate::gp::{Gp, GpConfig, GpError, NoiseModel, Prediction};

/// When the incremental surrogate pays for a full refit.
#[derive(Debug, Clone)]
pub struct RefitSchedule {
    /// Full refit after this many incremental updates (0 = never by
    /// count; the NLL trigger still applies).
    pub every: usize,
    /// Warmup floor: refit on every observation while the training set
    /// holds at most this many points. Early θ estimates change fast
    /// with each point, and the O(n³) rebuild is cheap at small n.
    pub min_points: usize,
    /// Full refit when the frozen-θ per-point NLL exceeds its value at
    /// the last full refit by more than this (raw-y units).
    pub nll_degradation: f64,
    /// The warm start counts as competitive when the previous model's
    /// per-point NLL is within this of the fresh multi-start optimum.
    pub warm_tolerance: f64,
    /// Random restarts used while the warm start is competitive.
    pub reduced_restarts: usize,
}

impl Default for RefitSchedule {
    fn default() -> Self {
        RefitSchedule {
            every: 16,
            min_points: 16,
            nll_degradation: 1.0,
            warm_tolerance: 0.1,
            reduced_restarts: 0,
        }
    }
}

/// A GP surrogate maintained across `observe` calls: rank-1 appends
/// between scheduled full refits, warm-started hyperparameter fits.
#[derive(Debug, Clone)]
pub struct IncrementalGp {
    config: GpConfig,
    schedule: RefitSchedule,
    gp: Option<Gp>,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    updates_since_full: usize,
    /// Per-point raw NLL right after the last full refit.
    nll_pp_at_refit: f64,
    /// Winner θ of the last full refit, the next warm start.
    prev_theta: Option<Vec<f64>>,
    /// Whether the next refit runs with `reduced_restarts`.
    next_reduced: bool,
}

impl IncrementalGp {
    /// An empty incremental surrogate; the first `observe` triggers the
    /// initial full fit.
    pub fn new(config: GpConfig, schedule: RefitSchedule) -> Self {
        IncrementalGp {
            config,
            schedule,
            gp: None,
            x: Vec::new(),
            y: Vec::new(),
            updates_since_full: 0,
            nll_pp_at_refit: f64::INFINITY,
            prev_theta: None,
            next_reduced: false,
        }
    }

    /// Absorb one observation, appending when the schedule allows and
    /// refitting when it demands.
    pub fn observe<R: Rng>(&mut self, xnew: &[f64], ynew: f64, rng: &mut R) -> Result<(), GpError> {
        self.x.push(xnew.to_vec());
        self.y.push(ynew);
        if self.gp.is_none() || self.x.len() <= self.schedule.min_points {
            return self.full_refit(rng, "schedule");
        }
        let gp = self.gp.as_mut().expect("checked above");
        if gp.update(xnew, ynew).is_err() {
            // Append numerically failed (near-duplicate point past the
            // jitter ladder): rebuild everything at fresh θ.
            return self.full_refit(rng, "fallback");
        }
        self.updates_since_full += 1;
        let n = gp.len() as f64;
        let nll_pp = gp.nll_raw() / n;
        if self.schedule.every > 0 && self.updates_since_full >= self.schedule.every {
            return self.full_refit(rng, "schedule");
        }
        if nll_pp - self.nll_pp_at_refit > self.schedule.nll_degradation {
            return self.full_refit(rng, "nll");
        }
        obs::count(obs::names::CTR_INCREMENTAL_UPDATES, 1);
        obs::record_with(|| obs::Event::Refit {
            model: "gp".to_string(),
            points: self.x.len() as u64,
            reason: "append".to_string(),
            full: false,
            updates_since_full: self.updates_since_full as u64,
            nll_per_point: obs::finite(nll_pp),
        });
        Ok(())
    }

    fn full_refit<R: Rng>(&mut self, rng: &mut R, reason: &str) -> Result<(), GpError> {
        let fixed_noise = matches!(self.config.noise, NoiseModel::Fixed(_));
        let warm_nll_pp = self.gp.as_ref().map(|g| g.nll_raw() / g.len() as f64);
        let reduced = self.next_reduced && self.prev_theta.is_some();
        let mut config = self.config.clone();
        if reduced {
            config.restarts = self.schedule.reduced_restarts;
        }
        let warm: Vec<Vec<f64>> = self.prev_theta.iter().cloned().collect();
        let gp = match Gp::fit_with_starts(&self.x, &self.y, &config, rng, &warm) {
            Ok(gp) => gp,
            Err(e) => {
                // Keep the invariant that a stored GP always covers every
                // observed point: drop the stale model so the next observe
                // rebuilds from scratch instead of appending onto it.
                self.gp = None;
                self.updates_since_full = 0;
                return Err(e);
            }
        };
        let n = gp.len() as f64;
        let best_nll_pp = gp.nll_raw() / n;
        if !warm.is_empty() {
            if reduced {
                obs::count(obs::names::CTR_WARMSTART_REDUCED, 1);
            }
            obs::record_with(|| obs::Event::Warmstart {
                model: "gp".to_string(),
                warm_nll: warm_nll_pp.and_then(obs::finite),
                best_nll: obs::finite(best_nll_pp),
                restarts: (warm.len() + config.restarts + 1) as u64,
                reduced,
            });
        }
        // Competitive warm start ⇒ the next refit can skip most random
        // restarts. Decided from NLL values only: deterministic at any
        // thread count.
        self.next_reduced = match warm_nll_pp {
            Some(w) => w.is_finite() && w - best_nll_pp <= self.schedule.warm_tolerance,
            None => false,
        };
        self.prev_theta = Some(gp.pack_theta(fixed_noise));
        self.nll_pp_at_refit = best_nll_pp;
        let updates = std::mem::take(&mut self.updates_since_full) as u64;
        obs::count(obs::names::CTR_FULL_REFITS, 1);
        obs::record_with(|| obs::Event::Refit {
            model: "gp".to_string(),
            points: self.x.len() as u64,
            reason: reason.to_string(),
            full: true,
            updates_since_full: updates,
            nll_per_point: obs::finite(best_nll_pp),
        });
        self.gp = Some(gp);
        Ok(())
    }

    /// The current fitted surrogate, `None` before the first observation.
    pub fn gp(&self) -> Option<&Gp> {
        self.gp.as_ref()
    }

    /// Posterior prediction through the maintained surrogate.
    ///
    /// Panics when no observation has been absorbed yet.
    pub fn predict(&self, xstar: &[f64]) -> Prediction {
        self.gp
            .as_ref()
            .expect("no observations yet")
            .predict(xstar)
    }

    /// Observations absorbed so far.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Incremental updates since the last full refit.
    pub fn updates_since_full(&self) -> usize {
        self.updates_since_full
    }

    /// The refit schedule in force.
    pub fn schedule(&self) -> &RefitSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gp::GpConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn objective(x: &[f64]) -> f64 {
        3.0 + 10.0 * (x[0] - 0.4) * (x[0] - 0.4) + (7.0 * x[0]).sin()
    }

    fn drive(inc: &mut IncrementalGp, n: usize, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            let x = vec![rng.gen::<f64>()];
            let y = objective(&x);
            inc.observe(&x, y, &mut rng).unwrap();
        }
    }

    #[test]
    fn appends_between_scheduled_refits() {
        let mut config = GpConfig::continuous(1);
        config.restarts = 1;
        let schedule = RefitSchedule {
            every: 8,
            min_points: 1,
            nll_degradation: f64::INFINITY, // isolate the count trigger
            ..RefitSchedule::default()
        };
        let mut inc = IncrementalGp::new(config, schedule);
        drive(&mut inc, 20, 5);
        // n=1 fit, then counts 1..8 (refit at 8), 1..8 (refit at 17),
        // then three appends.
        assert_eq!(inc.updates_since_full(), 3);
        assert_eq!(inc.len(), 20);
    }

    #[test]
    fn incremental_matches_full_rebuild_within_1e_6() {
        // The maintained (append-path) model must agree with a full
        // rebuild at the same θ and the same frozen standardization.
        let mut config = GpConfig::continuous(1);
        config.restarts = 1;
        let schedule = RefitSchedule {
            every: 10,
            min_points: 4,
            ..RefitSchedule::default()
        };
        let mut inc = IncrementalGp::new(config, schedule);
        let mut rng = StdRng::seed_from_u64(11);
        for i in 0..30 {
            let x = vec![rng.gen::<f64>()];
            let y = objective(&x);
            inc.observe(&x, y, &mut rng).unwrap();
            if i % 3 == 2 {
                let mut reference = inc.gp().unwrap().clone();
                reference.refit_at_current_hypers().unwrap();
                for q in [0.05, 0.3, 0.62, 0.97] {
                    let a = inc.predict(&[q]);
                    let b = reference.predict(&[q]);
                    assert!(
                        (a.mean - b.mean).abs() < 1e-6,
                        "mean {} vs {}",
                        a.mean,
                        b.mean
                    );
                    assert!((a.std - b.std).abs() < 1e-6, "std {} vs {}", a.std, b.std);
                }
            }
        }
    }

    #[test]
    fn parallel_and_serial_paths_are_bitwise_identical() {
        let schedule = RefitSchedule::default();
        let mut par_cfg = GpConfig::continuous(1);
        par_cfg.restarts = 2;
        let mut ser_cfg = par_cfg.clone();
        ser_cfg.parallel = false;
        let mut par = IncrementalGp::new(par_cfg, schedule.clone());
        let mut ser = IncrementalGp::new(ser_cfg, schedule);
        drive(&mut par, 25, 7);
        drive(&mut ser, 25, 7);
        for q in [0.0, 0.21, 0.5, 0.83, 1.0] {
            assert_eq!(par.predict(&[q]), ser.predict(&[q]));
        }
    }

    #[test]
    fn nll_degradation_triggers_early_refit() {
        let mut config = GpConfig::continuous(1);
        config.restarts = 1;
        let schedule = RefitSchedule {
            every: 1_000,
            min_points: 1,
            nll_degradation: 0.0, // any worsening forces a refit
            ..RefitSchedule::default()
        };
        let mut inc = IncrementalGp::new(config, schedule);
        let mut rng = StdRng::seed_from_u64(3);
        // Smooth data first, then an abrupt regime change the frozen-θ
        // model cannot explain.
        for i in 0..8 {
            inc.observe(&[i as f64 / 8.0], 1.0, &mut rng).unwrap();
        }
        inc.observe(&[0.95], 250.0, &mut rng).unwrap();
        assert_eq!(
            inc.updates_since_full(),
            0,
            "outlier must have forced a full refit"
        );
    }
}
