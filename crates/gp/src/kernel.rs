//! Covariance kernels over the unit hypercube, with analytic gradients
//! with respect to log-hyperparameters.
//!
//! All kernels operate on points already normalized into `[0,1]^d` by
//! `crowdtune-space`. Categorical dimensions use an indicator (Hamming)
//! distance instead of the squared difference — two categories are either
//! "the same cell" or "one unit apart", never "close" — which is how
//! mixed-variable GP tuners avoid imposing a fake ordering on categories.

/// How a dimension contributes to the kernel's distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimKind {
    /// Continuous (or ordinal integer) dimension: squared difference.
    Continuous,
    /// Categorical dimension: indicator distance (0 if equal, 1 if not).
    Categorical,
}

/// Kernel family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// Squared-exponential (RBF) with ARD lengthscales.
    SquaredExponential,
    /// Matérn 5/2 with ARD lengthscales.
    Matern52,
}

/// An ARD kernel: one lengthscale per input dimension plus a signal
/// variance. Hyperparameters are stored and differentiated in log space.
#[derive(Debug, Clone)]
pub struct Kernel {
    kind: KernelKind,
    dims: Vec<DimKind>,
    /// Log lengthscales, one per dimension.
    pub log_lengthscales: Vec<f64>,
    /// Log signal variance.
    pub log_signal_variance: f64,
}

impl Kernel {
    /// New kernel with unit lengthscales and unit signal variance.
    pub fn new(kind: KernelKind, dims: Vec<DimKind>) -> Self {
        let d = dims.len();
        Kernel {
            kind,
            dims,
            log_lengthscales: vec![0.0; d],
            log_signal_variance: 0.0,
        }
    }

    /// All-continuous convenience constructor.
    pub fn continuous(kind: KernelKind, dim: usize) -> Self {
        Self::new(kind, vec![DimKind::Continuous; dim])
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Dimension kinds.
    pub fn dims(&self) -> &[DimKind] {
        &self.dims
    }

    /// Kernel family.
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// Number of hyperparameters (`dim` lengthscales + signal variance).
    pub fn n_hyper(&self) -> usize {
        self.dims.len() + 1
    }

    /// Pack hyperparameters into a flat log-space vector
    /// `[log ls_0, ..., log ls_{d-1}, log sf2]`.
    pub fn pack(&self) -> Vec<f64> {
        let mut v = self.log_lengthscales.clone();
        v.push(self.log_signal_variance);
        v
    }

    /// Unpack hyperparameters from a flat log-space vector.
    pub fn unpack(&mut self, theta: &[f64]) {
        assert_eq!(theta.len(), self.n_hyper());
        self.log_lengthscales
            .copy_from_slice(&theta[..self.dims.len()]);
        self.log_signal_variance = theta[self.dims.len()];
    }

    /// Scaled per-dimension squared distances `u_d^2 = dist_d^2 / ls_d^2`,
    /// written into `out` (length `dim`). Returns the total `r^2`.
    #[inline]
    fn scaled_sq_dists(&self, x: &[f64], y: &[f64], out: &mut [f64]) -> f64 {
        let mut r2 = 0.0;
        for d in 0..self.dims.len() {
            let ls = self.log_lengthscales[d].exp();
            let dist2 = match self.dims[d] {
                DimKind::Continuous => {
                    let dd = x[d] - y[d];
                    dd * dd
                }
                DimKind::Categorical => {
                    if (x[d] - y[d]).abs() > 1e-12 {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            let u2 = dist2 / (ls * ls);
            out[d] = u2;
            r2 += u2;
        }
        r2
    }

    /// Evaluate `k(x, y)`.
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.dim());
        debug_assert_eq!(y.len(), self.dim());
        let mut u2 = vec![0.0; self.dim()];
        let r2 = self.scaled_sq_dists(x, y, &mut u2);
        let sf2 = self.log_signal_variance.exp();
        sf2 * self.base(r2)
    }

    /// The base correlation as a function of `r^2` (signal variance 1).
    #[inline]
    fn base(&self, r2: f64) -> f64 {
        match self.kind {
            KernelKind::SquaredExponential => (-0.5 * r2).exp(),
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                let s5r = 5.0f64.sqrt() * r;
                (1.0 + s5r + 5.0 * r2 / 3.0) * (-s5r).exp()
            }
        }
    }

    /// Evaluate `k(x, y)` together with the gradient with respect to every
    /// log-hyperparameter, appended to `grad_out` in pack order.
    pub fn eval_with_grad(&self, x: &[f64], y: &[f64], grad_out: &mut [f64]) -> f64 {
        debug_assert_eq!(grad_out.len(), self.n_hyper());
        let d = self.dim();
        let mut u2 = vec![0.0; d];
        let r2 = self.scaled_sq_dists(x, y, &mut u2);
        let sf2 = self.log_signal_variance.exp();
        let k = sf2 * self.base(r2);
        match self.kind {
            KernelKind::SquaredExponential => {
                // dk/d log ls_d = k * u_d^2
                for dd in 0..d {
                    grad_out[dd] = k * u2[dd];
                }
            }
            KernelKind::Matern52 => {
                // dk/d log ls_d = (5/3) sf2 (1 + sqrt5 r) e^{-sqrt5 r} u_d^2
                let r = r2.sqrt();
                let s5r = 5.0f64.sqrt() * r;
                let factor = (5.0 / 3.0) * sf2 * (1.0 + s5r) * (-s5r).exp();
                for dd in 0..d {
                    grad_out[dd] = factor * u2[dd];
                }
            }
        }
        // dk/d log sf2 = k
        grad_out[d] = k;
        k
    }

    /// The kernel's prior variance at any point, `k(x, x) = sf2`.
    pub fn prior_variance(&self) -> f64 {
        self.log_signal_variance.exp()
    }

    /// Hoist the θ-dependent per-pair constants (`exp` of every log
    /// hyperparameter) out of the evaluation loop. Compute once per θ,
    /// share across every pair.
    pub fn params(&self) -> KernelParams {
        let inv_ls2: Vec<f64> = self
            .log_lengthscales
            .iter()
            .map(|&l| {
                let ls = l.exp();
                1.0 / (ls * ls)
            })
            .collect();
        KernelParams {
            inv_ls2,
            sf2: self.log_signal_variance.exp(),
        }
    }

    /// Raw (unscaled) per-dimension squared distance between two points,
    /// written into `out`. θ-independent: depends only on the points and
    /// the dimension kinds, so it can be cached for the lifetime of a fit.
    #[inline]
    pub fn raw_sq_dists(&self, x: &[f64], y: &[f64], out: &mut [f64]) {
        for d in 0..self.dims.len() {
            out[d] = match self.dims[d] {
                DimKind::Continuous => {
                    let dd = x[d] - y[d];
                    dd * dd
                }
                DimKind::Categorical => {
                    if (x[d] - y[d]).abs() > 1e-12 {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
        }
    }

    /// Precompute the raw squared distances for every unordered pair of
    /// `points` (the θ-independent part of a covariance matrix).
    pub fn precompute_sq_dists(&self, points: &[Vec<f64>]) -> SqDists {
        SqDists::new(points, &self.dims)
    }

    /// Evaluate `k` for a pair from its precomputed raw squared
    /// distances. Allocation-free and `exp`-free except for the base
    /// correlation itself.
    #[inline]
    pub fn eval_precomputed(&self, sq: &[f64], p: &KernelParams) -> f64 {
        let mut r2 = 0.0;
        for (s, inv) in sq.iter().zip(p.inv_ls2.iter()) {
            r2 += s * inv;
        }
        p.sf2 * self.base(r2)
    }

    /// Evaluate `k(x, y)` from hoisted `params` without touching the
    /// per-pair distance cache (for points outside the training set,
    /// e.g. prediction candidates). Allocation-free.
    #[inline]
    pub fn eval_params(&self, x: &[f64], y: &[f64], p: &KernelParams) -> f64 {
        let mut r2 = 0.0;
        for d in 0..self.dims.len() {
            let dist2 = match self.dims[d] {
                DimKind::Continuous => {
                    let dd = x[d] - y[d];
                    dd * dd
                }
                DimKind::Categorical => {
                    if (x[d] - y[d]).abs() > 1e-12 {
                        1.0
                    } else {
                        0.0
                    }
                }
            };
            r2 += dist2 * p.inv_ls2[d];
        }
        p.sf2 * self.base(r2)
    }

    /// The lengthscale-gradient prefactor recovered from an
    /// already-computed kernel value: `dk/d log ls_d = factor * u_d^2`.
    /// Exp-free — the exponential inside `k` is reused instead of
    /// recomputed, so a gradient sweep over cached kernel values never
    /// calls `exp` at all.
    #[inline]
    pub fn grad_factor_from_value(&self, r2: f64, k: f64) -> f64 {
        match self.kind {
            KernelKind::SquaredExponential => k,
            KernelKind::Matern52 => {
                // k = sf2 (1 + s5r + 5 r2/3) e^{-s5r};
                // factor = (5/3) sf2 (1 + s5r) e^{-s5r}.
                let s5r = (5.0 * r2).sqrt();
                (5.0 / 3.0) * (1.0 + s5r) * k / (1.0 + s5r + 5.0 * r2 / 3.0)
            }
        }
    }

    /// Precomputed-distance twin of [`Kernel::eval_with_grad`]:
    /// evaluates `k` and the gradient with respect to every
    /// log-hyperparameter for one pair, with no allocation and no
    /// per-pair `exp` of the hyperparameters.
    #[inline]
    pub fn eval_with_grad_precomputed(
        &self,
        sq: &[f64],
        p: &KernelParams,
        grad_out: &mut [f64],
    ) -> f64 {
        let d = self.dims.len();
        debug_assert_eq!(grad_out.len(), d + 1);
        let mut r2 = 0.0;
        // First pass: stash u_d^2 in the gradient slots, accumulate r^2.
        for dd in 0..d {
            let u2 = sq[dd] * p.inv_ls2[dd];
            grad_out[dd] = u2;
            r2 += u2;
        }
        let (k, factor) = match self.kind {
            KernelKind::SquaredExponential => {
                let k = p.sf2 * (-0.5 * r2).exp();
                // dk/d log ls_d = k * u_d^2
                (k, k)
            }
            KernelKind::Matern52 => {
                let r = r2.sqrt();
                let s5r = 5.0f64.sqrt() * r;
                let e = (-s5r).exp();
                let k = p.sf2 * (1.0 + s5r + 5.0 * r2 / 3.0) * e;
                // dk/d log ls_d = (5/3) sf2 (1 + sqrt5 r) e^{-sqrt5 r} u_d^2
                (k, (5.0 / 3.0) * p.sf2 * (1.0 + s5r) * e)
            }
        };
        for g in grad_out[..d].iter_mut() {
            *g *= factor;
        }
        // dk/d log sf2 = k
        grad_out[d] = k;
        k
    }
}

/// θ-dependent constants hoisted out of per-pair kernel evaluation:
/// inverse squared lengthscales and the signal variance, both already
/// exponentiated.
#[derive(Debug, Clone)]
pub struct KernelParams {
    /// `1 / ls_d^2` per dimension.
    pub inv_ls2: Vec<f64>,
    /// `exp(log_signal_variance)`.
    pub sf2: f64,
}

/// θ-independent per-dimension squared distances for every unordered
/// pair of a fixed point set, packed pair-major (`data[pair * d + dim]`)
/// so a pair's distances are one contiguous read in the hot loop.
/// Pairs enumerate the upper triangle `i <= j`, `i` outer.
#[derive(Debug, Clone)]
pub struct SqDists {
    n: usize,
    d: usize,
    data: Vec<f64>,
}

impl SqDists {
    /// Build the cache for `points` under the given dimension kinds.
    pub fn new(points: &[Vec<f64>], dims: &[DimKind]) -> Self {
        let n = points.len();
        let d = dims.len();
        let mut data = vec![0.0; n * (n + 1) / 2 * d];
        let mut pair = 0;
        for i in 0..n {
            for j in i..n {
                let out = &mut data[pair * d..(pair + 1) * d];
                for (dd, kind) in dims.iter().enumerate() {
                    out[dd] = match kind {
                        DimKind::Continuous => {
                            let diff = points[i][dd] - points[j][dd];
                            diff * diff
                        }
                        DimKind::Categorical => {
                            if (points[i][dd] - points[j][dd]).abs() > 1e-12 {
                                1.0
                            } else {
                                0.0
                            }
                        }
                    };
                }
                pair += 1;
            }
        }
        SqDists { n, d, data }
    }

    /// Number of points the cache was built over.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Input dimensionality.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// The raw squared distances of pair `(i, j)`, `i <= j`.
    #[inline]
    pub fn pair(&self, i: usize, j: usize) -> &[f64] {
        debug_assert!(i <= j && j < self.n);
        // Row i of the upper triangle starts after the previous rows,
        // which hold n + (n-1) + ... + (n-i+1) pairs.
        let row_start = i * self.n - i * (i + 1) / 2 + i;
        let pair = row_start + (j - i);
        &self.data[pair * self.d..(pair + 1) * self.d]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(kind: KernelKind, dims: Vec<DimKind>) {
        let mut k = Kernel::new(kind, dims);
        k.log_lengthscales
            .iter_mut()
            .enumerate()
            .for_each(|(i, l)| *l = -0.3 + 0.1 * i as f64);
        k.log_signal_variance = 0.4;
        let x = [0.1, 0.7, 0.35];
        let y = [0.55, 0.2, 0.35];
        let mut grad = vec![0.0; k.n_hyper()];
        let _ = k.eval_with_grad(&x, &y, &mut grad);
        let theta0 = k.pack();
        let h = 1e-6;
        for p in 0..k.n_hyper() {
            let mut kp = k.clone();
            let mut tp = theta0.clone();
            tp[p] += h;
            kp.unpack(&tp);
            let fp = kp.eval(&x, &y);
            let mut tm = theta0.clone();
            tm[p] -= h;
            kp.unpack(&tm);
            let fm = kp.eval(&x, &y);
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - grad[p]).abs() < 1e-6 * (1.0 + fd.abs()),
                "param {p}: fd {fd} vs analytic {}",
                grad[p]
            );
        }
    }

    #[test]
    fn rbf_gradient_matches_finite_difference() {
        finite_diff_check(KernelKind::SquaredExponential, vec![DimKind::Continuous; 3]);
    }

    #[test]
    fn matern_gradient_matches_finite_difference() {
        finite_diff_check(KernelKind::Matern52, vec![DimKind::Continuous; 3]);
    }

    #[test]
    fn categorical_dims_gradient_matches_finite_difference() {
        finite_diff_check(
            KernelKind::SquaredExponential,
            vec![
                DimKind::Continuous,
                DimKind::Categorical,
                DimKind::Continuous,
            ],
        );
    }

    #[test]
    fn kernel_at_zero_distance_is_signal_variance() {
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let mut k = Kernel::continuous(kind, 2);
            k.log_signal_variance = 1.5f64.ln();
            let x = [0.3, 0.9];
            assert!((k.eval(&x, &x) - 1.5).abs() < 1e-12);
            assert!((k.prior_variance() - 1.5).abs() < 1e-12);
        }
    }

    #[test]
    fn kernel_decays_with_distance() {
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let k = Kernel::continuous(kind, 1);
            let k0 = k.eval(&[0.0], &[0.0]);
            let k1 = k.eval(&[0.0], &[0.3]);
            let k2 = k.eval(&[0.0], &[0.9]);
            assert!(k0 > k1 && k1 > k2, "{kind:?}: {k0} {k1} {k2}");
            assert!(k2 > 0.0);
        }
    }

    #[test]
    fn kernel_is_symmetric() {
        let mut k = Kernel::continuous(KernelKind::Matern52, 3);
        k.log_lengthscales = vec![-0.5, 0.2, 0.9];
        let x = [0.1, 0.2, 0.3];
        let y = [0.9, 0.0, 0.5];
        assert!((k.eval(&x, &y) - k.eval(&y, &x)).abs() < 1e-15);
    }

    #[test]
    fn categorical_distance_is_all_or_nothing() {
        let k = Kernel::new(KernelKind::SquaredExponential, vec![DimKind::Categorical]);
        let same = k.eval(&[0.25], &[0.25]);
        let diff_near = k.eval(&[0.25], &[0.75]);
        let diff_far = k.eval(&[0.125], &[0.875]);
        assert!((same - 1.0).abs() < 1e-12);
        // Different categories are equally unlike no matter the index gap.
        assert!((diff_near - diff_far).abs() < 1e-12);
        assert!(diff_near < same);
    }

    #[test]
    fn shorter_lengthscale_decays_faster() {
        let mut k_short = Kernel::continuous(KernelKind::SquaredExponential, 1);
        k_short.log_lengthscales[0] = (0.1f64).ln();
        let mut k_long = Kernel::continuous(KernelKind::SquaredExponential, 1);
        k_long.log_lengthscales[0] = (1.0f64).ln();
        let a = [0.2];
        let b = [0.5];
        assert!(k_short.eval(&a, &b) < k_long.eval(&a, &b));
    }

    #[test]
    fn precomputed_paths_match_direct_eval() {
        for kind in [KernelKind::SquaredExponential, KernelKind::Matern52] {
            let mut k = Kernel::new(
                kind,
                vec![
                    DimKind::Continuous,
                    DimKind::Categorical,
                    DimKind::Continuous,
                ],
            );
            k.unpack(&[0.2, -0.4, 0.1, 0.3]);
            let pts = vec![
                vec![0.1, 0.25, 0.9],
                vec![0.55, 0.75, 0.9],
                vec![0.3, 0.25, 0.05],
            ];
            let sq = k.precompute_sq_dists(&pts);
            let p = k.params();
            let mut grad_pre = vec![0.0; k.n_hyper()];
            let mut grad_ref = vec![0.0; k.n_hyper()];
            for i in 0..pts.len() {
                for j in i..pts.len() {
                    let k_ref = k.eval(&pts[i], &pts[j]);
                    let k_pre = k.eval_precomputed(sq.pair(i, j), &p);
                    let k_par = k.eval_params(&pts[i], &pts[j], &p);
                    assert!((k_pre - k_ref).abs() < 1e-14, "{kind:?} eval ({i},{j})");
                    assert!((k_par - k_ref).abs() < 1e-14, "{kind:?} params ({i},{j})");
                    let kg_ref = k.eval_with_grad(&pts[i], &pts[j], &mut grad_ref);
                    let kg_pre = k.eval_with_grad_precomputed(sq.pair(i, j), &p, &mut grad_pre);
                    assert!((kg_pre - kg_ref).abs() < 1e-14);
                    for (a, b) in grad_pre.iter().zip(grad_ref.iter()) {
                        assert!((a - b).abs() < 1e-14, "{kind:?} grad ({i},{j})");
                    }
                    // The value-derived prefactor must reproduce the
                    // lengthscale gradients without recomputing the exp.
                    let pair = sq.pair(i, j);
                    let mut r2 = 0.0;
                    for (dd, s) in pair.iter().enumerate() {
                        r2 += s * p.inv_ls2[dd];
                    }
                    let factor = k.grad_factor_from_value(r2, k_pre);
                    for dd in 0..3 {
                        let u2 = pair[dd] * p.inv_ls2[dd];
                        assert!(
                            (factor * u2 - grad_ref[dd]).abs() < 1e-12,
                            "{kind:?} factor ({i},{j}) dim {dd}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sq_dists_pair_indexing() {
        let k = Kernel::continuous(KernelKind::SquaredExponential, 2);
        let pts: Vec<Vec<f64>> = (0..5)
            .map(|i| vec![i as f64 * 0.1, i as f64 * 0.2])
            .collect();
        let sq = k.precompute_sq_dists(&pts);
        assert_eq!(sq.n(), 5);
        assert_eq!(sq.dim(), 2);
        for i in 0..5 {
            for j in i..5 {
                let mut want = vec![0.0; 2];
                k.raw_sq_dists(&pts[i], &pts[j], &mut want);
                assert_eq!(sq.pair(i, j), &want[..], "pair ({i},{j})");
            }
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut k = Kernel::continuous(KernelKind::Matern52, 4);
        let theta = vec![0.1, -0.2, 0.3, -0.4, 0.7];
        k.unpack(&theta);
        assert_eq!(k.pack(), theta);
    }
}
