//! Linear Coregionalization Model (LCM): the multitask Gaussian process
//! behind GPTune's `Multitask(PS)` and this paper's `Multitask(TS)`.
//!
//! The covariance between observation `i` of task `t_i` and observation
//! `j` of task `t_j` is
//!
//! ```text
//! K[(i,t_i),(j,t_j)] = sum_q B_q[t_i,t_j] * k_q(x_i, x_j)
//!                      + delta_ij * delta_{t_i t_j} * sn2_{t_i}
//! B_q = a_q a_q^T + diag(kappa_q)
//! ```
//!
//! with `Q` latent unit-variance kernels `k_q` (signal variance is
//! absorbed into the coregionalization matrices `B_q`). Crucially for
//! `Multitask(TS)`, tasks may have **unequal numbers of samples** —
//! including zero samples for the target task at the start of transfer
//! learning. All hyperparameters (per-`q` ARD lengthscales, the task
//! loadings `a_q`, the task-specific variances `kappa_q`, and per-task
//! noise) are fitted by maximizing the exact joint marginal likelihood
//! with analytic gradients.

use crate::gp::{run_multistart, Prediction};
use crate::kernel::{DimKind, Kernel, KernelKind, KernelParams, SqDists};
use crowdtune_linalg::{Cholesky, LbfgsOptions, Matrix};
use crowdtune_obs as obs;
use rand::Rng;
use rayon::prelude::*;

const LOG_LS_MIN: f64 = -4.6;
const LOG_LS_MAX: f64 = 2.31;
const A_MIN: f64 = -5.0;
const A_MAX: f64 = 5.0;
const LOG_KAPPA_MIN: f64 = -13.8; // 1e-6
const LOG_KAPPA_MAX: f64 = 2.31; // 10
const LOG_NOISE_MIN: f64 = -18.4;
const LOG_NOISE_MAX: f64 = 0.69; // ~2

/// Configuration for fitting an [`Lcm`].
#[derive(Debug, Clone)]
pub struct LcmConfig {
    /// Number of latent kernels `Q` (rank of the coregionalization).
    pub q: usize,
    /// Kernel family for every latent kernel.
    pub kernel: KernelKind,
    /// Per-dimension kinds.
    pub dims: Vec<DimKind>,
    /// Number of random restarts beyond the default start.
    pub restarts: usize,
    /// L-BFGS iteration cap per restart.
    pub max_opt_iter: usize,
    /// Run restarts in parallel. Bitwise identical to the sequential
    /// path at any thread count: all starts are drawn from the RNG up
    /// front and the winner is reduced in start order.
    pub parallel: bool,
}

impl LcmConfig {
    /// Defaults: `Q = 2`, Matérn 5/2, one restart.
    pub fn new(dims: Vec<DimKind>) -> Self {
        LcmConfig {
            q: 2,
            kernel: KernelKind::Matern52,
            dims,
            restarts: 1,
            max_opt_iter: 50,
            parallel: true,
        }
    }

    /// All-continuous convenience constructor.
    pub fn continuous(dim: usize) -> Self {
        Self::new(vec![DimKind::Continuous; dim])
    }
}

/// Errors from LCM fitting.
#[derive(Debug, Clone, PartialEq)]
pub enum LcmError {
    /// No task carried any samples.
    NoSamples,
    /// A training target was NaN or infinite.
    NonFiniteTarget,
    /// An input point had the wrong dimensionality.
    DimensionMismatch {
        /// Dimension the configuration expects.
        expected: usize,
        /// Dimension found in the data.
        got: usize,
    },
    /// The joint covariance could not be factorized.
    NumericalFailure,
}

impl std::fmt::Display for LcmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LcmError::NoSamples => write!(f, "LCM requires at least one sample across tasks"),
            LcmError::NonFiniteTarget => write!(f, "LCM training targets must be finite"),
            LcmError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "LCM input dimension mismatch: expected {expected}, got {got}"
                )
            }
            LcmError::NumericalFailure => write!(f, "LCM covariance factorization failed"),
        }
    }
}

impl std::error::Error for LcmError {}

/// Per-task training data: unit-cube inputs and raw outputs.
#[derive(Debug, Clone, Default)]
pub struct TaskData {
    /// Unit-cube input points.
    pub x: Vec<Vec<f64>>,
    /// Raw (unstandardized) outputs, one per input point.
    pub y: Vec<f64>,
}

/// A fitted LCM multitask GP.
#[derive(Debug, Clone)]
pub struct Lcm {
    kernels: Vec<Kernel>,
    /// `a[q][t]` task loadings.
    a: Vec<Vec<f64>>,
    /// `kappa[q][t]` task-specific variances.
    kappa: Vec<Vec<f64>>,
    /// Per-task log noise variance.
    log_noise: Vec<f64>,
    /// All training inputs, flattened across tasks.
    x_all: Vec<Vec<f64>>,
    /// Task index of each flattened input.
    task_of: Vec<usize>,
    alpha: Vec<f64>,
    /// `L^{-1}`, precomputed at fit time so the posterior variance is
    /// `prior - ||L^{-1} k*||^2` — independent triangular dots instead
    /// of a per-query loop-carried triangular solve.
    linv: Matrix,
    /// Standardized training targets, kept so incremental updates can
    /// re-solve `alpha` in O(n²) through `linv`.
    ys: Vec<f64>,
    /// Per-task standardization.
    y_mean: Vec<f64>,
    y_std: Vec<f64>,
    n_tasks: usize,
    lml: f64,
}

struct Packing {
    q: usize,
    d: usize,
    t: usize,
}

impl Packing {
    fn len(&self) -> usize {
        self.q * self.d + 2 * self.q * self.t + self.t
    }
    fn ls(&self, q: usize, dim: usize) -> usize {
        q * self.d + dim
    }
    fn a(&self, q: usize, t: usize) -> usize {
        self.q * self.d + q * self.t + t
    }
    fn kappa(&self, q: usize, t: usize) -> usize {
        self.q * self.d + self.q * self.t + q * self.t + t
    }
    fn noise(&self, t: usize) -> usize {
        self.q * self.d + 2 * self.q * self.t + t
    }
}

impl Lcm {
    /// Fit the LCM to per-task datasets (tasks may have different — even
    /// zero — sample counts).
    pub fn fit<R: Rng>(
        tasks: &[TaskData],
        config: &LcmConfig,
        rng: &mut R,
    ) -> Result<Self, LcmError> {
        Self::fit_with_starts(tasks, config, rng, &[])
    }

    /// [`Lcm::fit`] with extra L-BFGS starts prepended before the default
    /// start — the warm-start entry point for incremental refits
    /// (typically [`Lcm::pack_theta`] of the previous fit). Starts whose
    /// length does not match the current packing (e.g. the task count
    /// changed) are skipped. The multistart winner is still reduced in
    /// start order, so determinism at any thread count is unchanged.
    pub fn fit_with_starts<R: Rng>(
        tasks: &[TaskData],
        config: &LcmConfig,
        rng: &mut R,
        extra_starts: &[Vec<f64>],
    ) -> Result<Self, LcmError> {
        let fit_span = obs::span(obs::names::SPAN_LCM_FIT);
        let t_count = tasks.len();
        let d = config.dims.len();
        let q_count = config.q.max(1);
        let n_total: usize = tasks.iter().map(|t| t.x.len()).sum();
        if n_total == 0 {
            return Err(LcmError::NoSamples);
        }
        for task in tasks {
            if task.y.iter().any(|v| !v.is_finite()) {
                return Err(LcmError::NonFiniteTarget);
            }
            for xi in &task.x {
                if xi.len() != d {
                    return Err(LcmError::DimensionMismatch {
                        expected: d,
                        got: xi.len(),
                    });
                }
            }
            assert_eq!(
                task.x.len(),
                task.y.len(),
                "x/y length mismatch within a task"
            );
        }

        // Per-task standardization; tasks without data fall back to the
        // pooled statistics so their predictions live on a sane scale.
        let pooled: Vec<f64> = tasks.iter().flat_map(|t| t.y.iter().copied()).collect();
        let pooled_mean = crowdtune_linalg::stats::mean(&pooled);
        let pooled_std = {
            let s = crowdtune_linalg::stats::std_dev(&pooled);
            if s > 1e-12 {
                s
            } else {
                1.0
            }
        };
        let mut y_mean = vec![0.0; t_count];
        let mut y_std = vec![1.0; t_count];
        for (t, task) in tasks.iter().enumerate() {
            if task.y.is_empty() {
                y_mean[t] = pooled_mean;
                y_std[t] = pooled_std;
            } else {
                y_mean[t] = crowdtune_linalg::stats::mean(&task.y);
                let s = crowdtune_linalg::stats::std_dev(&task.y);
                y_std[t] = if s > 1e-12 { s } else { pooled_std };
            }
        }

        // Flatten.
        let mut x_all = Vec::with_capacity(n_total);
        let mut task_of = Vec::with_capacity(n_total);
        let mut ys = Vec::with_capacity(n_total);
        for (t, task) in tasks.iter().enumerate() {
            for (xi, &yi) in task.x.iter().zip(&task.y) {
                x_all.push(xi.clone());
                task_of.push(t);
                ys.push((yi - y_mean[t]) / y_std[t]);
            }
        }

        let pack = Packing {
            q: q_count,
            d,
            t: t_count,
        };
        let kernel_proto = {
            let mut k = Kernel::new(config.kernel, config.dims.clone());
            k.log_signal_variance = 0.0; // unit variance, fixed
            k
        };

        // Pairwise squared distances are θ-independent (all latent
        // kernels share the dimension kinds): compute them once per fit
        // and share across every objective evaluation of every restart.
        let sq = kernel_proto.precompute_sq_dists(&x_all);

        let objective = |theta: &[f64]| -> (f64, Vec<f64>) {
            if lcm_out_of_bounds(theta, &pack) {
                return (f64::INFINITY, vec![0.0; theta.len()]);
            }
            match lcm_nlml_with_grad(theta, &pack, &kernel_proto, &sq, &task_of, &ys) {
                Some(r) => r,
                None => (f64::INFINITY, vec![0.0; theta.len()]),
            }
        };

        // Starts: warm starts (if any), a deterministic default, then
        // random restarts.
        let mut starts = Vec::with_capacity(extra_starts.len() + config.restarts + 1);
        starts.extend(
            extra_starts
                .iter()
                .filter(|s| s.len() == pack.len())
                .cloned(),
        );
        let mut s0 = vec![0.0; pack.len()];
        for q in 0..q_count {
            for dim in 0..d {
                s0[pack.ls(q, dim)] = (0.3f64).ln();
            }
            for t in 0..t_count {
                // Positive loadings => tasks start positively correlated,
                // which is the transfer-learning prior; stagger q's a bit.
                s0[pack.a(q, t)] = if q == 0 { 1.0 } else { 0.3 };
                s0[pack.kappa(q, t)] = (0.1f64).ln();
            }
        }
        for t in 0..t_count {
            s0[pack.noise(t)] = (1e-2f64).ln();
        }
        starts.push(s0.clone());
        for _ in 0..config.restarts {
            let mut s = s0.clone();
            for q in 0..q_count {
                for dim in 0..d {
                    s[pack.ls(q, dim)] = rng.gen_range(-2.0..1.0);
                }
                for t in 0..t_count {
                    s[pack.a(q, t)] = rng.gen_range(-1.5..1.5);
                    s[pack.kappa(q, t)] = rng.gen_range(-6.0..0.0);
                }
            }
            for t in 0..t_count {
                s[pack.noise(t)] = rng.gen_range(-9.0..-2.0);
            }
            starts.push(s);
        }

        let opts = LbfgsOptions {
            max_iter: config.max_opt_iter,
            ..Default::default()
        };
        let Some((nlml, theta)) = run_multistart(&starts, objective, &opts, config.parallel) else {
            obs::count(obs::names::CTR_FIT_FALLBACKS, 1);
            obs::record_with(|| obs::Event::Fit {
                model: "lcm".to_string(),
                points: n_total as u64,
                restarts: starts.len() as u64,
                nll: None,
                duration_us: fit_span.elapsed_ns() / 1_000,
                fallback: true,
            });
            return Err(LcmError::NumericalFailure);
        };
        obs::record_with(|| obs::Event::Fit {
            model: "lcm".to_string(),
            points: n_total as u64,
            restarts: starts.len() as u64,
            nll: obs::finite(nlml),
            duration_us: fit_span.elapsed_ns() / 1_000,
            fallback: false,
        });

        // Unpack the winner and finalize.
        let mut kernels = Vec::with_capacity(q_count);
        let mut a = vec![vec![0.0; t_count]; q_count];
        let mut kappa = vec![vec![0.0; t_count]; q_count];
        let mut log_noise = vec![0.0; t_count];
        for q in 0..q_count {
            let mut k = kernel_proto.clone();
            for dim in 0..d {
                k.log_lengthscales[dim] = theta[pack.ls(q, dim)];
            }
            kernels.push(k);
            for t in 0..t_count {
                a[q][t] = theta[pack.a(q, t)];
                kappa[q][t] = theta[pack.kappa(q, t)].exp();
            }
        }
        for t in 0..t_count {
            log_noise[t] = theta[pack.noise(t)];
        }

        let k_full = build_lcm_covariance(&kernels, &a, &kappa, &log_noise, &x_all, &task_of);
        let chol = Cholesky::robust(&k_full).map_err(|_| LcmError::NumericalFailure)?;
        let alpha = chol.solve_vec(&ys);
        let linv = chol.inverse_lower();

        Ok(Lcm {
            kernels,
            a,
            kappa,
            log_noise,
            x_all,
            task_of,
            alpha,
            linv,
            ys,
            y_mean,
            y_std,
            n_tasks: t_count,
            lml: -nlml,
        })
    }

    /// Absorb one new observation for `task` with a rank-1 factor append
    /// instead of a full refit: O(n²) total. The factor itself is not
    /// stored — the new row `l₂₁ = L⁻¹ k_new` comes straight from the
    /// precomputed inverse factor, which then grows by one
    /// vector-matrix product, and `alpha = L⁻ᵀ(L⁻¹ ys)` re-solves
    /// through the same inverse.
    ///
    /// Hyperparameters, coregionalization, and the per-task target
    /// standardization stay **frozen** at their last-fit values; the
    /// caller schedules genuine refits (see [`Lcm::fit_with_starts`] +
    /// [`Lcm::pack_theta`] for warm-started ones). On numerical failure
    /// (the appended pivot stays non-positive past the jitter ladder)
    /// the model is left unchanged.
    pub fn update(&mut self, task: usize, xnew: &[f64], ynew: f64) -> Result<(), LcmError> {
        if !ynew.is_finite() {
            return Err(LcmError::NonFiniteTarget);
        }
        assert!(task < self.n_tasks, "task index out of range");
        let d = self.kernels[0].dim();
        if xnew.len() != d {
            return Err(LcmError::DimensionMismatch {
                expected: d,
                got: xnew.len(),
            });
        }
        let n = self.x_all.len();
        let params = self.hoisted_params();
        let mut k_new = vec![0.0; n];
        for (i, xi) in self.x_all.iter().enumerate() {
            let ti = self.task_of[i];
            let mut v = 0.0;
            for (q, kq) in self.kernels.iter().enumerate() {
                let b = self.a[q][task] * self.a[q][ti]
                    + if ti == task { self.kappa[q][task] } else { 0.0 };
                v += b * kq.eval_params(xnew, xi, &params[q]);
            }
            k_new[i] = v;
        }
        let prior: f64 = (0..self.kernels.len())
            .map(|q| self.a[q][task] * self.a[q][task] + self.kappa[q][task])
            .sum();
        let k_diag = prior + self.log_noise[task].exp();
        // New factor row through the inverse factor: l21 = L⁻¹ k_new.
        let mut l21 = vec![0.0; n];
        for (i, l) in l21.iter_mut().enumerate() {
            *l = crowdtune_linalg::dot(&self.linv.row(i)[..=i], &k_new[..=i]);
        }
        let norm_sq: f64 = l21.iter().map(|v| v * v).sum();
        // Same pivot-rescue ladder as `Cholesky::append_row`: extra
        // jitter on the appended diagonal only, eps-scale start, 10×
        // steps, `robust`-style ceiling.
        let max_jitter = 1e-4 * k_diag.abs().max(1e-12);
        let fallback_start = 1e-12 * k_diag.abs().max(1e-300);
        let mut extra = 0.0f64;
        let mut attempts: u64 = 0;
        let pivot = loop {
            attempts += 1;
            let p = k_diag + extra - norm_sq;
            if p > 0.0 && p.is_finite() {
                break p;
            }
            let next = if extra == 0.0 {
                fallback_start
            } else {
                extra * 10.0
            };
            if next > max_jitter || !next.is_finite() {
                obs::count(obs::names::CTR_JITTER_EXHAUSTED, 1);
                obs::record_with(|| obs::Event::Jitter {
                    dim: (n + 1) as u64,
                    jitter: extra,
                    attempts,
                    recovered: false,
                });
                return Err(LcmError::NumericalFailure);
            }
            extra = next;
        };
        if attempts > 1 {
            obs::count(obs::names::CTR_JITTER_ESCALATIONS, 1);
            obs::record_with(|| obs::Event::Jitter {
                dim: (n + 1) as u64,
                jitter: extra,
                attempts,
                recovered: true,
            });
        }
        let lambda = pivot.sqrt();
        // Grow L⁻¹: old rows unchanged, new row is
        // [-(1/λ)·(l₂₁ᵀ L⁻¹), 1/λ].
        let mut linv = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            linv.row_mut(i)[..=i].copy_from_slice(&self.linv.row(i)[..=i]);
        }
        {
            let new_row = linv.row_mut(n);
            for (i, &li) in l21.iter().enumerate() {
                if li != 0.0 {
                    let src = &self.linv.row(i)[..=i];
                    for (o, &s) in new_row.iter_mut().zip(src.iter()) {
                        *o += li * s;
                    }
                }
            }
            let inv_lambda = 1.0 / lambda;
            for v in new_row[..n].iter_mut() {
                *v = -*v * inv_lambda;
            }
            new_row[n] = inv_lambda;
        }
        self.linv = linv;
        self.x_all.push(xnew.to_vec());
        self.task_of.push(task);
        self.ys.push((ynew - self.y_mean[task]) / self.y_std[task]);
        let n1 = n + 1;
        // alpha = K⁻¹ ys = L⁻ᵀ (L⁻¹ ys), two O(n²) triangular products.
        let mut v = vec![0.0; n1];
        for (i, vi) in v.iter_mut().enumerate() {
            *vi = crowdtune_linalg::dot(&self.linv.row(i)[..=i], &self.ys[..=i]);
        }
        let mut alpha = vec![0.0; n1];
        for (j, aj) in alpha.iter_mut().enumerate() {
            let mut s = 0.0;
            for (i, &vi) in v.iter().enumerate().skip(j) {
                s += self.linv[(i, j)] * vi;
            }
            *aj = s;
        }
        self.alpha = alpha;
        // log det K = 2 Σ ln L_ii = -2 Σ ln L⁻¹_ii.
        let mut log_det = 0.0;
        for i in 0..n1 {
            log_det -= 2.0 * self.linv[(i, i)].ln();
        }
        self.lml = -0.5 * crowdtune_linalg::dot(&self.ys, &self.alpha)
            - 0.5 * log_det
            - 0.5 * n1 as f64 * (2.0 * std::f64::consts::PI).ln();
        Ok(())
    }

    /// The fit's packed θ vector, suitable as a warm start for
    /// [`Lcm::fit_with_starts`] on a model with the same `q`, dimension
    /// count, and task count.
    pub fn pack_theta(&self) -> Vec<f64> {
        let pack = Packing {
            q: self.kernels.len(),
            d: self.kernels[0].dim(),
            t: self.n_tasks,
        };
        let mut theta = vec![0.0; pack.len()];
        for (q, kq) in self.kernels.iter().enumerate() {
            for (dim, &ls) in kq.log_lengthscales.iter().enumerate() {
                theta[pack.ls(q, dim)] = ls;
            }
            for t in 0..self.n_tasks {
                theta[pack.a(q, t)] = self.a[q][t];
                // κ is stored exponentiated; clamp the round trip back
                // inside the optimizer bounds (exp→ln can cross a
                // boundary by one ulp).
                theta[pack.kappa(q, t)] = self.kappa[q][t].ln().clamp(LOG_KAPPA_MIN, LOG_KAPPA_MAX);
            }
        }
        for t in 0..self.n_tasks {
            theta[pack.noise(t)] = self.log_noise[t];
        }
        theta
    }

    /// Negative log marginal likelihood in **raw** (unstandardized) y
    /// units, comparable across fits with different per-task
    /// standardizations.
    pub fn nll_raw(&self) -> f64 {
        let scale: f64 = self.task_of.iter().map(|&t| self.y_std[t].ln()).sum();
        -self.lml + scale
    }

    /// Posterior prediction for `task` at unit-cube point `xstar`.
    pub fn predict(&self, task: usize, xstar: &[f64]) -> Prediction {
        let params = self.hoisted_params();
        self.predict_with_params(task, xstar, &params)
    }

    /// Batch prediction for one task: the θ-dependent kernel constants
    /// are hoisted once and candidates run in parallel. Entry `j` is
    /// bitwise identical to `self.predict(task, &xs[j])`.
    pub fn predict_batch(&self, task: usize, xs: &[Vec<f64>]) -> Vec<Prediction> {
        let m = xs.len();
        if m == 0 {
            return Vec::new();
        }
        let n = self.x_all.len();
        let params = self.hoisted_params();
        let predict_one = |x: &Vec<f64>| self.predict_with_params(task, x, &params);
        if rayon::current_num_threads() > 1 && m >= 2 && m * n * n >= 1 << 16 {
            xs.par_iter().map(predict_one).collect()
        } else {
            xs.iter().map(predict_one).collect()
        }
    }

    /// Exponentiated per-q kernel constants, hoisted out of the
    /// per-point loops.
    fn hoisted_params(&self) -> Vec<KernelParams> {
        self.kernels.iter().map(|k| k.params()).collect()
    }

    /// Shared single-point prediction: both `predict` and
    /// `predict_batch` funnel through this so they match bitwise.
    fn predict_with_params(
        &self,
        task: usize,
        xstar: &[f64],
        params: &[KernelParams],
    ) -> Prediction {
        assert!(task < self.n_tasks, "task index out of range");
        let n = self.x_all.len();
        let mut kstar = vec![0.0; n];
        for (i, xi) in self.x_all.iter().enumerate() {
            let ti = self.task_of[i];
            let mut v = 0.0;
            for (q, kq) in self.kernels.iter().enumerate() {
                let b = self.a[q][task] * self.a[q][ti]
                    + if ti == task { self.kappa[q][task] } else { 0.0 };
                v += b * kq.eval_params(xstar, xi, &params[q]);
            }
            kstar[i] = v;
        }
        let mean_s = crowdtune_linalg::dot(&kstar, &self.alpha);
        let prior: f64 = (0..self.kernels.len())
            .map(|q| self.a[q][task] * self.a[q][task] + self.kappa[q][task])
            .sum();
        // Posterior variance via the precomputed inverse factor:
        // `prior - ||L^{-1} k*||^2`. Each row dot is an independent
        // contiguous reduction, so the loop pipelines where the
        // loop-carried triangular solve it replaces cannot.
        let mut qf = 0.0;
        for i in 0..kstar.len() {
            let vi = crowdtune_linalg::dot(&self.linv.row(i)[..=i], &kstar[..=i]);
            qf += vi * vi;
        }
        let var_s = (prior - qf).max(0.0);
        Prediction {
            mean: self.y_mean[task] + self.y_std[task] * mean_s,
            std: self.y_std[task] * var_s.sqrt(),
        }
    }

    /// The joint log marginal likelihood of the fitted model.
    pub fn log_marginal_likelihood(&self) -> f64 {
        self.lml
    }

    /// The fitted noise variance of a task (standardized-y units).
    pub fn task_noise_variance(&self, task: usize) -> f64 {
        self.log_noise[task].exp()
    }

    /// Number of tasks.
    pub fn n_tasks(&self) -> usize {
        self.n_tasks
    }

    /// Total number of training samples across tasks.
    pub fn n_samples(&self) -> usize {
        self.x_all.len()
    }

    /// The fitted coregionalization matrix `B_q` for latent kernel `q`.
    pub fn coregionalization(&self, q: usize) -> Matrix {
        let t = self.n_tasks;
        let mut b = Matrix::zeros(t, t);
        for i in 0..t {
            for j in 0..t {
                b[(i, j)] =
                    self.a[q][i] * self.a[q][j] + if i == j { self.kappa[q][i] } else { 0.0 };
            }
        }
        b
    }

    /// The correlation between two tasks implied by the fitted model
    /// (normalized total covariance at zero input distance).
    pub fn task_correlation(&self, t1: usize, t2: usize) -> f64 {
        let cov: f64 = (0..self.kernels.len())
            .map(|q| self.a[q][t1] * self.a[q][t2] + if t1 == t2 { self.kappa[q][t1] } else { 0.0 })
            .sum();
        let v1: f64 = (0..self.kernels.len())
            .map(|q| self.a[q][t1] * self.a[q][t1] + self.kappa[q][t1])
            .sum();
        let v2: f64 = (0..self.kernels.len())
            .map(|q| self.a[q][t2] * self.a[q][t2] + self.kappa[q][t2])
            .sum();
        cov / (v1 * v2).sqrt().max(1e-300)
    }
}

fn lcm_out_of_bounds(theta: &[f64], pack: &Packing) -> bool {
    for q in 0..pack.q {
        for dim in 0..pack.d {
            let v = theta[pack.ls(q, dim)];
            if !(LOG_LS_MIN..=LOG_LS_MAX).contains(&v) {
                return true;
            }
        }
        for t in 0..pack.t {
            let av = theta[pack.a(q, t)];
            if !(A_MIN..=A_MAX).contains(&av) {
                return true;
            }
            let kv = theta[pack.kappa(q, t)];
            if !(LOG_KAPPA_MIN..=LOG_KAPPA_MAX).contains(&kv) {
                return true;
            }
        }
    }
    for t in 0..pack.t {
        let nv = theta[pack.noise(t)];
        if !(LOG_NOISE_MIN..=LOG_NOISE_MAX).contains(&nv) {
            return true;
        }
    }
    false
}

fn build_lcm_covariance(
    kernels: &[Kernel],
    a: &[Vec<f64>],
    kappa: &[Vec<f64>],
    log_noise: &[f64],
    x_all: &[Vec<f64>],
    task_of: &[usize],
) -> Matrix {
    let n = x_all.len();
    let mut k = Matrix::zeros(n, n);
    for i in 0..n {
        for j in i..n {
            let (ti, tj) = (task_of[i], task_of[j]);
            let mut v = 0.0;
            for (q, kq) in kernels.iter().enumerate() {
                let b = a[q][ti] * a[q][tj] + if ti == tj { kappa[q][ti] } else { 0.0 };
                v += b * kq.eval(&x_all[i], &x_all[j]);
            }
            k[(i, j)] = v;
            k[(j, i)] = v;
        }
        k[(i, i)] += log_noise[task_of[i]].exp();
    }
    k
}

/// Negative joint LML and gradient for the packed LCM hyperparameters,
/// evaluated from the fit-lifetime distance cache.
fn lcm_nlml_with_grad(
    theta: &[f64],
    pack: &Packing,
    kernel_proto: &Kernel,
    sq: &SqDists,
    task_of: &[usize],
    ys: &[f64],
) -> Option<(f64, Vec<f64>)> {
    let n = sq.n();
    let (q_count, d) = (pack.q, pack.d);

    // Unpack.
    let mut kernels = Vec::with_capacity(q_count);
    for q in 0..q_count {
        let mut k = kernel_proto.clone();
        for dim in 0..d {
            k.log_lengthscales[dim] = theta[pack.ls(q, dim)];
        }
        kernels.push(k);
    }
    let a: Vec<Vec<f64>> = (0..q_count)
        .map(|q| (0..pack.t).map(|t| theta[pack.a(q, t)]).collect())
        .collect();
    let kappa: Vec<Vec<f64>> = (0..q_count)
        .map(|q| (0..pack.t).map(|t| theta[pack.kappa(q, t)].exp()).collect())
        .collect();
    let log_noise: Vec<f64> = (0..pack.t).map(|t| theta[pack.noise(t)]).collect();
    let noise_var: Vec<f64> = log_noise.iter().map(|v| v.exp()).collect();

    // θ-dependent kernel constants, exponentiated once per evaluation.
    let params: Vec<KernelParams> = kernels.iter().map(|k| k.params()).collect();

    // Pass 1: base (unit-variance) kernel values per (pair, q), computed
    // once and reused by the covariance assembly here and by every
    // a/κ/lengthscale gradient component below. One exp per (pair, q),
    // no allocation inside the loop.
    let n_pairs = n * (n + 1) / 2;
    let mut kq_vals = vec![0.0; n_pairs * q_count];
    let mut k_full = Matrix::zeros(n, n);
    let mut pair = 0;
    for i in 0..n {
        let ti = task_of[i];
        for j in i..n {
            let tj = task_of[j];
            let sqp = sq.pair(i, j);
            let kvs = &mut kq_vals[pair * q_count..(pair + 1) * q_count];
            let mut v = 0.0;
            for (q, kq) in kernels.iter().enumerate() {
                let kv = kq.eval_precomputed(sqp, &params[q]);
                kvs[q] = kv;
                let b = a[q][ti] * a[q][tj] + if ti == tj { kappa[q][ti] } else { 0.0 };
                v += b * kv;
            }
            k_full[(i, j)] = v;
            k_full[(j, i)] = v;
            pair += 1;
        }
        k_full[(i, i)] += noise_var[ti];
    }

    let chol = Cholesky::robust(&k_full).ok()?;
    let alpha = chol.solve_vec(ys);
    let nlml = 0.5 * crowdtune_linalg::dot(ys, &alpha)
        + 0.5 * chol.log_det()
        + 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();

    // K^{-1} via column-parallel identity solves (Cholesky::inverse
    // skips the structural zeros of each identity column).
    let kinv = chol.inverse();
    let mut grad = vec![0.0; pack.len()];

    // Pass 2: gradient sweep over pairs, reusing the cached kernel
    // values. The lengthscale prefactor is recovered from the value
    // (`grad_factor_from_value`), so this pass never calls exp.
    // dNLML/dtheta = -0.5 * sum_ij W_ij dK_ij/dtheta, W = aa^T - K^{-1}.
    let mut pair = 0;
    for i in 0..n {
        let ti = task_of[i];
        for j in i..n {
            let tj = task_of[j];
            let w = alpha[i] * alpha[j] - kinv[(i, j)];
            // Off-diagonal pairs appear twice in the full sum.
            let sym = if i == j { 1.0 } else { 2.0 };
            let ws = w * sym;
            let sqp = sq.pair(i, j);
            let kvs = &kq_vals[pair * q_count..(pair + 1) * q_count];
            for (q, kq) in kernels.iter().enumerate() {
                let kv = kvs[q];
                let inv_ls2 = &params[q].inv_ls2;
                let b = a[q][ti] * a[q][tj] + if ti == tj { kappa[q][ti] } else { 0.0 };
                // Lengthscales: dk/d log ls_dim = factor * u_dim^2.
                let mut r2 = 0.0;
                for dim in 0..d {
                    r2 += sqp[dim] * inv_ls2[dim];
                }
                let c = 0.5 * ws * b * kq.grad_factor_from_value(r2, kv);
                for dim in 0..d {
                    grad[pack.ls(q, dim)] -= c * sqp[dim] * inv_ls2[dim];
                }
                // Loadings: dK/da_q[ti] and dK/da_q[tj].
                grad[pack.a(q, ti)] -= 0.5 * ws * a[q][tj] * kv;
                grad[pack.a(q, tj)] -= 0.5 * ws * a[q][ti] * kv;
                // Task-specific variance (same-task pairs only).
                if ti == tj {
                    grad[pack.kappa(q, ti)] -= 0.5 * ws * kappa[q][ti] * kv;
                }
            }
            pair += 1;
        }
        // Noise: diagonal only.
        let w_ii = alpha[i] * alpha[i] - kinv[(i, i)];
        grad[pack.noise(ti)] -= 0.5 * w_ii * noise_var[ti];
    }

    Some((nlml, grad))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlated_tasks(n_src: usize, n_tgt: usize, seed: u64) -> Vec<TaskData> {
        let mut rng = StdRng::seed_from_u64(seed);
        let f_src = |x: f64| (4.0 * x).sin() * 2.0 + 1.0;
        let f_tgt = |x: f64| (4.0 * x).sin() * 2.5 + 3.0; // shifted & scaled copy
        let mut src = TaskData::default();
        for _ in 0..n_src {
            let x: f64 = rng.gen();
            src.x.push(vec![x]);
            src.y.push(f_src(x));
        }
        let mut tgt = TaskData::default();
        for _ in 0..n_tgt {
            let x: f64 = rng.gen();
            tgt.x.push(vec![x]);
            tgt.y.push(f_tgt(x));
        }
        vec![src, tgt]
    }

    #[test]
    fn fit_with_unequal_sample_counts() {
        let tasks = correlated_tasks(30, 4, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        assert_eq!(lcm.n_tasks(), 2);
        assert_eq!(lcm.n_samples(), 34);
        assert!(lcm.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn transfer_improves_target_prediction() {
        // With 30 source samples and only 3 target samples, the LCM must
        // predict the target function far better than the 3 points alone
        // could. Check at held-out locations.
        // Data seed chosen so the three target points span the domain;
        // with a degenerate draw (all three clustered) no amount of
        // transfer can pin down the target offset and the test would
        // measure luck, not transfer.
        let tasks = correlated_tasks(30, 3, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        let f_tgt = |x: f64| (4.0 * x).sin() * 2.5 + 3.0;
        let mut max_err = 0.0f64;
        for &t in &[0.1, 0.3, 0.5, 0.7, 0.9] {
            let p = lcm.predict(1, &[t]);
            max_err = max_err.max((p.mean - f_tgt(t)).abs());
        }
        assert!(max_err < 1.2, "max target prediction error {max_err}");
    }

    #[test]
    fn parallel_fit_matches_serial_bitwise() {
        // Same contract as the single-task GP: restarts may run on
        // worker threads, but the selected hyperparameters (and hence
        // every posterior) must be bitwise identical to a serial fit.
        let tasks = correlated_tasks(20, 6, 3);
        let mut config = LcmConfig::continuous(1);
        config.restarts = 2;
        let par = Lcm::fit(&tasks, &config, &mut StdRng::seed_from_u64(11)).unwrap();
        config.parallel = false;
        let ser = Lcm::fit(&tasks, &config, &mut StdRng::seed_from_u64(11)).unwrap();
        assert_eq!(par.log_marginal_likelihood(), ser.log_marginal_likelihood());
        for task in 0..2 {
            for q in [0.0, 0.21, 0.5, 0.83, 0.99] {
                assert_eq!(par.predict(task, &[q]), ser.predict(task, &[q]));
            }
        }
    }

    #[test]
    fn predict_batch_matches_per_point_bitwise() {
        let tasks = correlated_tasks(25, 8, 2);
        let mut rng = StdRng::seed_from_u64(13);
        let lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        let qs: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64 / 256.0]).collect();
        for task in 0..2 {
            let batch = lcm.predict_batch(task, &qs);
            assert_eq!(batch.len(), qs.len());
            for (q, b) in qs.iter().zip(&batch) {
                assert_eq!(*b, lcm.predict(task, q));
            }
        }
    }

    #[test]
    fn learned_correlation_is_positive_for_correlated_tasks() {
        let tasks = correlated_tasks(40, 10, 5);
        let mut rng = StdRng::seed_from_u64(6);
        let lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        let corr = lcm.task_correlation(0, 1);
        assert!(corr > 0.5, "correlation {corr}");
        assert!((lcm.task_correlation(0, 0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zero_sample_target_task_predictable() {
        let mut tasks = correlated_tasks(25, 0, 7);
        tasks[1] = TaskData::default();
        let mut rng = StdRng::seed_from_u64(8);
        let lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        let p = lcm.predict(1, &[0.5]);
        assert!(p.mean.is_finite());
        assert!(p.std.is_finite() && p.std >= 0.0);
    }

    #[test]
    fn empty_everything_rejected() {
        let tasks = vec![TaskData::default(), TaskData::default()];
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap_err(),
            LcmError::NoSamples
        );
    }

    #[test]
    fn non_finite_target_rejected() {
        let mut tasks = correlated_tasks(5, 2, 1);
        tasks[0].y[0] = f64::INFINITY;
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap_err(),
            LcmError::NonFiniteTarget
        );
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let tasks = correlated_tasks(6, 3, 13);
        let pack = Packing { q: 2, d: 1, t: 2 };
        let proto = {
            let mut k = Kernel::continuous(KernelKind::SquaredExponential, 1);
            k.log_signal_variance = 0.0;
            k
        };
        // Flatten like fit() does, but with raw ys for simplicity.
        let mut x_all = Vec::new();
        let mut task_of = Vec::new();
        let mut ys = Vec::new();
        for (t, task) in tasks.iter().enumerate() {
            for (xi, &yi) in task.x.iter().zip(&task.y) {
                x_all.push(xi.clone());
                task_of.push(t);
                ys.push(yi);
            }
        }
        let mut theta = vec![0.0; pack.len()];
        // An arbitrary interior point.
        for q in 0..2 {
            theta[pack.ls(q, 0)] = -0.5 + 0.3 * q as f64;
            for t in 0..2 {
                theta[pack.a(q, t)] = 0.8 - 0.2 * (q + t) as f64;
                theta[pack.kappa(q, t)] = -2.0 + 0.5 * t as f64;
            }
        }
        for t in 0..2 {
            theta[pack.noise(t)] = -4.0 + t as f64;
        }
        let sq = proto.precompute_sq_dists(&x_all);
        let (_, grad) = lcm_nlml_with_grad(&theta, &pack, &proto, &sq, &task_of, &ys).unwrap();
        let h = 1e-5;
        for p in 0..pack.len() {
            let mut tp = theta.clone();
            tp[p] += h;
            let (fp, _) = lcm_nlml_with_grad(&tp, &pack, &proto, &sq, &task_of, &ys).unwrap();
            let mut tm = theta.clone();
            tm[p] -= h;
            let (fm, _) = lcm_nlml_with_grad(&tm, &pack, &proto, &sq, &task_of, &ys).unwrap();
            let fd = (fp - fm) / (2.0 * h);
            assert!(
                (fd - grad[p]).abs() < 1e-4 * (1.0 + fd.abs()),
                "param {p}: fd {fd} vs analytic {}",
                grad[p]
            );
        }
    }

    #[test]
    fn coregionalization_matrix_is_psd_shaped() {
        let tasks = correlated_tasks(20, 8, 17);
        let mut rng = StdRng::seed_from_u64(18);
        let lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        for q in 0..2 {
            let b = lcm.coregionalization(q);
            // B = a a^T + diag(kappa) with kappa > 0 is PD by construction;
            // verify via Cholesky.
            assert!(Cholesky::robust(&b).is_ok(), "B_{q} not PSD");
        }
    }

    #[test]
    fn incremental_update_matches_refit_at_same_hypers() {
        // Appending target-task points one at a time must agree with a
        // from-scratch model at the same θ and the same frozen per-task
        // standardization, to well under the 1e-6 contract.
        let mut tasks = correlated_tasks(25, 6, 41);
        let mut rng = StdRng::seed_from_u64(42);
        let config = LcmConfig::continuous(1);
        let mut inc = Lcm::fit(&tasks, &config, &mut rng).unwrap();
        let f_tgt = |x: f64| (4.0 * x).sin() * 2.5 + 3.0;
        for k in 0..5 {
            let x = 0.1 + 0.17 * k as f64;
            let y = f_tgt(x);
            inc.update(1, &[x], y).unwrap();
            tasks[1].x.push(vec![x]);
            tasks[1].y.push(y);
        }
        // Reference: same θ and standardization, rebuilt from scratch.
        let mut full = inc.clone();
        let k_full = build_lcm_covariance(
            &full.kernels,
            &full.a,
            &full.kappa,
            &full.log_noise,
            &full.x_all,
            &full.task_of,
        );
        let chol = Cholesky::robust(&k_full).unwrap();
        full.alpha = chol.solve_vec(&full.ys);
        full.linv = chol.inverse_lower();
        for task in 0..2 {
            for q in [0.03, 0.33, 0.71, 0.96] {
                let a = inc.predict(task, &[q]);
                let b = full.predict(task, &[q]);
                assert!(
                    (a.mean - b.mean).abs() < 1e-6,
                    "task {task} q {q}: mean {} vs {}",
                    a.mean,
                    b.mean
                );
                assert!(
                    (a.std - b.std).abs() < 1e-6,
                    "task {task} q {q}: std {} vs {}",
                    a.std,
                    b.std
                );
            }
        }
        assert_eq!(inc.n_samples(), 36);
    }

    #[test]
    fn warm_started_refit_is_no_worse_than_cold() {
        let tasks = correlated_tasks(20, 6, 55);
        let config = LcmConfig::continuous(1);
        let cold = Lcm::fit(&tasks, &config, &mut StdRng::seed_from_u64(56)).unwrap();
        let warm_theta = cold.pack_theta();
        // Zero random restarts: the warm start plus the default must
        // still reach at least the cold optimum (the warm start IS the
        // cold optimum).
        let mut reduced = config.clone();
        reduced.restarts = 0;
        let warm = Lcm::fit_with_starts(
            &tasks,
            &reduced,
            &mut StdRng::seed_from_u64(57),
            &[warm_theta],
        )
        .unwrap();
        assert!(
            warm.log_marginal_likelihood() >= cold.log_marginal_likelihood() - 1e-6,
            "warm {} vs cold {}",
            warm.log_marginal_likelihood(),
            cold.log_marginal_likelihood()
        );
    }

    #[test]
    fn update_rejects_bad_inputs_and_keeps_model_usable() {
        let tasks = correlated_tasks(10, 4, 60);
        let mut rng = StdRng::seed_from_u64(61);
        let mut lcm = Lcm::fit(&tasks, &LcmConfig::continuous(1), &mut rng).unwrap();
        assert!(matches!(
            lcm.update(0, &[0.5], f64::NAN),
            Err(LcmError::NonFiniteTarget)
        ));
        assert!(matches!(
            lcm.update(0, &[0.5, 0.5], 1.0),
            Err(LcmError::DimensionMismatch { .. })
        ));
        assert_eq!(lcm.n_samples(), 14);
        assert!(lcm.predict(1, &[0.5]).std.is_finite());
    }
}
