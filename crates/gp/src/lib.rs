//! # crowdtune-gp
//!
//! Gaussian-process regression for crowd-tuning, hand-rolled on top of
//! `crowdtune-linalg`:
//!
//! - [`kernel`] — ARD squared-exponential and Matérn 5/2 kernels over the
//!   unit cube, with an indicator distance for categorical dimensions and
//!   analytic log-hyperparameter gradients.
//! - [`gp`] — single-task GP regression fitted by maximizing the exact log
//!   marginal likelihood (multi-start L-BFGS).
//! - [`lcm`] — the Linear Coregionalization Model multitask GP with
//!   support for unequal per-task sample counts, the substrate of the
//!   paper's `Multitask(PS)` and `Multitask(TS)` transfer-learning
//!   algorithms.
//! - [`incremental`] — amortized surrogate maintenance: rank-1 Cholesky
//!   appends between scheduled full refits, warm-started hyperparameter
//!   optimization.
//! - [`sparse`] — the crowd-scale inducing-point sparse GP: O(nm²) fit,
//!   O(m²) predictions, frozen-set updates between scheduled inducing
//!   reselections.
//! - [`experts`] — partitioned local experts: per-cell exact GPs plus a
//!   bounded cross-task LCM core, merged gPoE-style.
//! - [`calibration`] — observation-only surrogate-health diagnostics:
//!   held-out 90%-interval coverage and predictive-NLL drift.

#![warn(missing_docs)]

pub mod calibration;
pub mod experts;
pub mod gp;
pub mod incremental;
pub mod kernel;
pub mod lcm;
pub mod sparse;

pub use calibration::{CalibrationTracker, Z90};
pub use experts::{LocalExperts, LocalExpertsConfig};
pub use gp::{Gp, GpConfig, GpError, NoiseModel, Prediction};
pub use incremental::{IncrementalGp, RefitSchedule};
pub use kernel::{DimKind, Kernel, KernelKind};
pub use lcm::{Lcm, LcmConfig, LcmError, TaskData};
pub use sparse::{IncrementalSparseGp, SparseGp, SparseGpConfig};
