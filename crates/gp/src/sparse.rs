//! Crowd-scale sparse surrogate: a subset-of-data / inducing-point GP.
//!
//! The exact [`Gp`] pays O(n³) per fit and O(n) per posterior mean, which
//! is unusable at the 10⁴–10⁵ histories a crowd repository accumulates.
//! [`SparseGp`] replaces it above a size threshold:
//!
//! - **Inducing selection** — a deterministic farthest-point (k-center)
//!   sweep picks `m` well-spread training points. The only randomness is
//!   the seed point, drawn once from the caller's RNG; every subsequent
//!   step is a serial argmax with ties broken toward the lowest index, so
//!   the selected set is bitwise-identical at any thread count.
//! - **Hyperparameters** — fitted by the exact [`Gp`] machinery on the
//!   inducing subset (subset-of-data). The sparse model adopts the
//!   subset's θ *and* its target standardization, so the kernel scale and
//!   the standardized targets are exactly consistent.
//! - **Nyström factors** — the SoR/DTC posterior needs
//!   `Σ = K_mm + σₙ⁻² K_mn K_nm` and `a = K_mn ys`, assembled in O(nm²)
//!   over a fixed 32-chunk partition whose partial sums are folded in
//!   chunk order: the same bits fall out whether the chunks run on 1 or
//!   16 threads. Both `K_mm` and `Σ` go through the same jitter-ladder
//!   [`Cholesky::robust`] as the exact GP.
//! - **Prediction** — O(m²) per point: `μ = k*ᵀβ` with
//!   `β = σₙ⁻² Σ⁻¹ a`, and the DTC latent variance
//!   `sf² − ‖L_mm⁻¹k*‖² + ‖L_Σ⁻¹k*‖²`.
//! - **Update** — new points are absorbed against the *frozen* inducing
//!   set in O(m²) + one O(m³) refactor (`a += ys·k*`,
//!   `Σ += σₙ⁻² k*k*ᵀ`), mirroring [`Gp::update`]'s frozen-θ contract;
//!   [`IncrementalSparseGp`] schedules genuine reselections the same way
//!   [`IncrementalGp`](crate::IncrementalGp) schedules full refits.
//!
//! With `m = n` the SoR algebra collapses to the exact GP posterior, a
//! property the tests below exploit.

use crowdtune_linalg::{dot, stats, Cholesky, Matrix};
use crowdtune_obs as obs;
use rand::Rng;
use rayon::prelude::*;

use crate::gp::{Gp, GpConfig, GpError, NoiseModel, Prediction};
use crate::incremental::RefitSchedule;
use crate::kernel::{DimKind, Kernel, KernelParams};

/// Fixed partition width for the O(nm²) Nyström accumulation. Chunk
/// boundaries depend only on `n`, never on the thread count, and the
/// per-chunk partial sums are folded serially in chunk order — that is
/// what makes the assembled factors bitwise-reproducible at any
/// parallelism while still exposing 32-way work.
const NYSTROM_CHUNKS: usize = 32;

/// Points below this skip the parallel assembly path entirely (the
/// serial loop over the same chunks produces the same bits anyway).
const PARALLEL_ASSEMBLY_MIN: usize = 256;

/// Block size for the native `predict_batch` path.
const PREDICT_BLOCK: usize = 256;

/// Configuration for fitting a [`SparseGp`].
#[derive(Debug, Clone)]
pub struct SparseGpConfig {
    /// Exact-GP configuration used for the subset hyperparameter fit
    /// (kernel family, dimension kinds, noise model, restarts).
    pub base: GpConfig,
    /// Number of inducing points `m`. Clamped to `n` when the training
    /// set is smaller.
    pub m_inducing: usize,
}

impl SparseGpConfig {
    /// Defaults: the [`GpConfig`] defaults plus 128 inducing points.
    pub fn new(dims: Vec<DimKind>) -> Self {
        SparseGpConfig {
            base: GpConfig::new(dims),
            m_inducing: 128,
        }
    }

    /// All-continuous convenience constructor.
    pub fn continuous(dim: usize) -> Self {
        Self::new(vec![DimKind::Continuous; dim])
    }
}

/// A fitted inducing-point sparse GP (SoR mean, DTC variance).
#[derive(Debug, Clone)]
pub struct SparseGp {
    kernel: Kernel,
    log_noise: f64,
    /// Inducing inputs (rows of the training set, in index order).
    z: Vec<Vec<f64>>,
    /// Training-set indices of the inducing points, ascending.
    inducing: Vec<usize>,
    /// Full training inputs, kept for frozen-set updates and the
    /// refit-at-current-inducing reference path.
    x: Vec<Vec<f64>>,
    /// Standardized training targets (subset standardization).
    ys: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// `Σ = K_mm + σₙ⁻² K_mn K_nm`, kept for O(m²) rank-1 updates.
    sigma: Matrix,
    /// `a = K_mn ys`, kept for the same reason.
    a: Vec<f64>,
    /// `L_mm⁻¹` with `L_mm = chol(K_mm)`.
    lm_inv: Matrix,
    /// `L_Σ⁻¹` with `L_Σ = chol(Σ)`.
    ls_inv: Matrix,
    /// `β = σₙ⁻² Σ⁻¹ a`; the posterior mean is `k*ᵀβ`.
    beta: Vec<f64>,
}

/// Raw (θ-independent) squared distance between two points under the
/// same per-dimension semantics as [`Kernel::raw_sq_dists`]: continuous
/// dims contribute `(a−b)²`, categorical dims an inequality indicator.
pub(crate) fn raw_dist2(dims: &[DimKind], a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for d in 0..dims.len() {
        acc += match dims[d] {
            DimKind::Continuous => {
                let dd = a[d] - b[d];
                dd * dd
            }
            DimKind::Categorical => {
                if (a[d] - b[d]).abs() > 1e-12 {
                    1.0
                } else {
                    0.0
                }
            }
        };
    }
    acc
}

/// Deterministic farthest-point (k-center) subset: starting from
/// `first`, repeatedly add the point maximizing its distance to the
/// chosen set. The sweep is serial, ties break toward the lowest index,
/// and already-chosen points are sentinel-masked, so the result depends
/// only on `(x, dims, m, first)` — never on thread count. Returns
/// ascending training-set indices. O(n·m·d).
pub(crate) fn farthest_point_subset(
    x: &[Vec<f64>],
    dims: &[DimKind],
    m: usize,
    first: usize,
) -> Vec<usize> {
    let n = x.len();
    let m = m.min(n);
    let mut chosen = Vec::with_capacity(m);
    // min_d[i] = distance from i to the chosen set; -1 marks chosen.
    let mut min_d = vec![f64::INFINITY; n];
    let mut cur = first;
    for _ in 0..m {
        chosen.push(cur);
        min_d[cur] = -1.0;
        let mut best = 0usize;
        let mut best_d = -1.0;
        for i in 0..n {
            if min_d[i] < 0.0 {
                continue;
            }
            let d2 = raw_dist2(dims, &x[cur], &x[i]);
            if d2 < min_d[i] {
                min_d[i] = d2;
            }
            if min_d[i] > best_d {
                best_d = min_d[i];
                best = i;
            }
        }
        cur = best;
    }
    chosen.sort_unstable();
    chosen
}

/// The Nyström-side factors of a sparse fit, separated from the model so
/// both the initial fit and the refit-at-current-inducing path share one
/// assembly routine.
struct NystromFactors {
    sigma: Matrix,
    a: Vec<f64>,
    lm_inv: Matrix,
    ls_inv: Matrix,
    beta: Vec<f64>,
}

fn assemble_nystrom(
    kernel: &Kernel,
    log_noise: f64,
    z: &[Vec<f64>],
    x: &[Vec<f64>],
    ys: &[f64],
    parallel: bool,
) -> Result<NystromFactors, GpError> {
    let m = z.len();
    let n = x.len();
    let params = kernel.params();

    let mut kmm = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..=i {
            let v = kernel.eval_params(&z[i], &z[j], &params);
            kmm[(i, j)] = v;
            kmm[(j, i)] = v;
        }
    }

    // Partial Σ-sums and a-vectors per fixed chunk; each chunk walks its
    // points in index order, so partials are thread-count-independent.
    let chunk = n.div_ceil(NYSTROM_CHUNKS).max(1);
    let ranges: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|s| (s, (s + chunk).min(n)))
        .collect();
    let accumulate = |&(s, e): &(usize, usize)| -> (Vec<f64>, Vec<f64>) {
        let mut sig = vec![0.0; m * m];
        let mut a = vec![0.0; m];
        let mut k = vec![0.0; m];
        for i in s..e {
            for (kj, zj) in k.iter_mut().zip(z.iter()) {
                *kj = kernel.eval_params(zj, &x[i], &params);
            }
            let yi = ys[i];
            for j in 0..m {
                let kj = k[j];
                a[j] += yi * kj;
                for (sl, &kl) in sig[j * m..(j + 1) * m].iter_mut().zip(k.iter()) {
                    *sl += kj * kl;
                }
            }
        }
        (sig, a)
    };
    let partials: Vec<(Vec<f64>, Vec<f64>)> =
        if parallel && rayon::current_num_threads() > 1 && n >= PARALLEL_ASSEMBLY_MIN {
            ranges.par_iter().map(accumulate).collect()
        } else {
            ranges.iter().map(accumulate).collect()
        };

    // Serial fold in chunk order: determinism lives here.
    let mut sig_sum = vec![0.0; m * m];
    let mut a_sum = vec![0.0; m];
    for (sig, a) in &partials {
        for (acc, v) in sig_sum.iter_mut().zip(sig.iter()) {
            *acc += v;
        }
        for (acc, v) in a_sum.iter_mut().zip(a.iter()) {
            *acc += v;
        }
    }

    let inv_sn2 = (-log_noise).exp();
    let mut sigma = Matrix::zeros(m, m);
    for i in 0..m {
        for j in 0..m {
            sigma[(i, j)] = kmm[(i, j)] + inv_sn2 * sig_sum[i * m + j];
        }
    }
    sigma.symmetrize_mut();

    let chol_m = Cholesky::robust(&kmm).map_err(|_| GpError::NumericalFailure)?;
    let lm_inv = chol_m.inverse_lower();
    let chol_s = Cholesky::robust(&sigma).map_err(|_| GpError::NumericalFailure)?;
    let ls_inv = chol_s.inverse_lower();
    let beta: Vec<f64> = chol_s
        .solve_vec(&a_sum)
        .into_iter()
        .map(|v| v * inv_sn2)
        .collect();

    Ok(NystromFactors {
        sigma,
        a: a_sum,
        lm_inv,
        ls_inv,
        beta,
    })
}

/// `‖L⁻¹k‖²` for a lower-triangular inverse factor: independent
/// triangular dot products, O(m²/2).
fn lower_apply_norm2(linv: &Matrix, k: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..k.len() {
        let row = &linv.row(i)[..=i];
        let mut s = 0.0;
        for (l, kv) in row.iter().zip(k.iter()) {
            s += l * kv;
        }
        acc += s * s;
    }
    acc
}

impl SparseGp {
    /// Fit a sparse GP to `(x, y)` in the unit cube: farthest-point
    /// inducing selection (one RNG draw for the seed point), subset
    /// hyperparameter fit through [`Gp::fit`], then the O(nm²) Nyström
    /// assembly.
    pub fn fit<R: Rng>(
        x: &[Vec<f64>],
        y: &[f64],
        config: &SparseGpConfig,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        Self::fit_with_starts(x, y, config, rng, &[])
    }

    /// [`SparseGp::fit`] with extra warm starts forwarded to the subset
    /// hyperparameter fit (same θ layout as [`Gp::fit_with_starts`]).
    pub fn fit_with_starts<R: Rng>(
        x: &[Vec<f64>],
        y: &[f64],
        config: &SparseGpConfig,
        rng: &mut R,
        extra_starts: &[Vec<f64>],
    ) -> Result<Self, GpError> {
        let n = x.len();
        if n == 0 {
            return Err(GpError::EmptyTrainingSet);
        }
        if y.iter().any(|v| !v.is_finite()) {
            return Err(GpError::NonFiniteTarget);
        }
        let d = config.base.dims.len();
        for xi in x {
            if xi.len() != d {
                return Err(GpError::DimensionMismatch {
                    expected: d,
                    got: xi.len(),
                });
            }
        }

        let m = config.m_inducing.max(1).min(n);
        let first = rng.gen_range(0..n);
        let inducing = farthest_point_subset(x, &config.base.dims, m, first);
        let z: Vec<Vec<f64>> = inducing.iter().map(|&i| x[i].clone()).collect();
        let ysub: Vec<f64> = inducing.iter().map(|&i| y[i]).collect();

        // Subset-of-data hyperparameter fit: the exact GP machinery on
        // the m inducing points, warm starts and all.
        let sub = Gp::fit_with_starts(&z, &ysub, &config.base, rng, extra_starts)?;
        let kernel = sub.kernel().clone();
        let log_noise = sub.log_noise();

        // Adopt the subset's standardization (recomputed exactly as
        // `Gp::fit` computes it) so θ and the standardized targets live
        // on the same scale.
        let y_mean = stats::mean(&ysub);
        let mut y_std = stats::std_dev(&ysub);
        if y_std.is_nan() || y_std <= 1e-12 {
            y_std = 1.0;
        }
        let ys: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();

        let f = assemble_nystrom(&kernel, log_noise, &z, x, &ys, config.base.parallel)?;
        Ok(SparseGp {
            kernel,
            log_noise,
            z,
            inducing,
            x: x.to_vec(),
            ys,
            y_mean,
            y_std,
            sigma: f.sigma,
            a: f.a,
            lm_inv: f.lm_inv,
            ls_inv: f.ls_inv,
            beta: f.beta,
        })
    }

    /// Posterior prediction, O(m²), in original y units.
    pub fn predict(&self, xstar: &[f64]) -> Prediction {
        let params = self.kernel.params();
        let mut k = vec![0.0; self.z.len()];
        self.predict_hoisted(xstar, &params, &mut k)
    }

    /// The per-point kernel under hoisted θ constants and a caller-owned
    /// scratch row — the batch path calls this in a loop so the row and
    /// the `exp`s of θ are paid once per batch, not once per point.
    fn predict_hoisted(&self, xstar: &[f64], params: &KernelParams, k: &mut [f64]) -> Prediction {
        for (kj, zj) in k.iter_mut().zip(self.z.iter()) {
            *kj = self.kernel.eval_params(zj, xstar, params);
        }
        let mean_s = dot(k, &self.beta);
        let qm = lower_apply_norm2(&self.lm_inv, k);
        let qs = lower_apply_norm2(&self.ls_inv, k);
        let var_s = (self.kernel.prior_variance() - qm + qs).max(0.0);
        Prediction {
            mean: self.y_mean + self.y_std * mean_s,
            std: self.y_std * var_s.sqrt(),
        }
    }

    /// Batch prediction with the θ constants and scratch row hoisted
    /// once. Parallel over fixed 256-point blocks when it pays;
    /// per-point results are computed independently, so the parallel
    /// path is bitwise-identical to the serial one.
    pub fn predict_batch(&self, xs: &[Vec<f64>]) -> Vec<Prediction> {
        let params = self.kernel.params();
        let m = self.z.len();
        let threads = rayon::current_num_threads();
        if threads <= 1 || xs.len() < 2 * PREDICT_BLOCK {
            let mut k = vec![0.0; m];
            return xs
                .iter()
                .map(|x| self.predict_hoisted(x, &params, &mut k))
                .collect();
        }
        let blocks: Vec<Vec<Prediction>> = xs
            .par_chunks(PREDICT_BLOCK)
            .map(|block| {
                let mut k = vec![0.0; m];
                block
                    .iter()
                    .map(|x| self.predict_hoisted(x, &params, &mut k))
                    .collect()
            })
            .collect();
        blocks.into_iter().flatten().collect()
    }

    /// Absorb one observation against the **frozen** inducing set, θ,
    /// and standardization: `a += ys·k*`, `Σ += σₙ⁻² k*k*ᵀ`, one O(m³)
    /// refactor of the m×m `Σ`. On numerical failure the model is left
    /// unchanged; the caller should fall back to a full reselection.
    pub fn update(&mut self, xnew: &[f64], ynew: f64) -> Result<(), GpError> {
        if !ynew.is_finite() {
            return Err(GpError::NonFiniteTarget);
        }
        let d = self.kernel.dim();
        if xnew.len() != d {
            return Err(GpError::DimensionMismatch {
                expected: d,
                got: xnew.len(),
            });
        }
        let params = self.kernel.params();
        let m = self.z.len();
        let mut k = vec![0.0; m];
        for (kj, zj) in k.iter_mut().zip(self.z.iter()) {
            *kj = self.kernel.eval_params(zj, xnew, &params);
        }
        let ys_new = (ynew - self.y_mean) / self.y_std;
        let inv_sn2 = (-self.log_noise).exp();

        let mut sigma = self.sigma.clone();
        for i in 0..m {
            let ki = k[i];
            for (sv, &kj) in sigma.row_mut(i).iter_mut().zip(k.iter()) {
                *sv += inv_sn2 * ki * kj;
            }
        }
        // Factor the candidate Σ before committing anything, so a jitter
        // failure leaves the model untouched.
        let chol_s = Cholesky::robust(&sigma).map_err(|_| GpError::NumericalFailure)?;
        let mut a = self.a.clone();
        for (av, &kj) in a.iter_mut().zip(k.iter()) {
            *av += ys_new * kj;
        }
        let beta: Vec<f64> = chol_s
            .solve_vec(&a)
            .into_iter()
            .map(|v| v * inv_sn2)
            .collect();
        self.ls_inv = chol_s.inverse_lower();
        self.sigma = sigma;
        self.a = a;
        self.beta = beta;
        self.x.push(xnew.to_vec());
        self.ys.push(ys_new);
        Ok(())
    }

    /// Rebuild the Nyström factors from the stored training set at the
    /// current θ, inducing set, and standardization — the reference the
    /// frozen-set [`SparseGp::update`] path must agree with (up to
    /// rounding), mirroring [`Gp::refit_at_current_hypers`].
    pub fn refit_at_current_inducing(&mut self) -> Result<(), GpError> {
        let f = assemble_nystrom(
            &self.kernel,
            self.log_noise,
            &self.z,
            &self.x,
            &self.ys,
            true,
        )?;
        self.sigma = f.sigma;
        self.a = f.a;
        self.lm_inv = f.lm_inv;
        self.ls_inv = f.ls_inv;
        self.beta = f.beta;
        Ok(())
    }

    /// Winner θ in [`Gp::pack_theta`] layout, the next warm start.
    pub fn pack_theta(&self, fixed_noise: bool) -> Vec<f64> {
        let mut t = self.kernel.pack();
        if !fixed_noise {
            t.push(self.log_noise);
        }
        t
    }

    /// Training-set indices of the inducing points, ascending.
    pub fn inducing_indices(&self) -> &[usize] {
        &self.inducing
    }

    /// The inducing inputs.
    pub fn inducing_inputs(&self) -> &[Vec<f64>] {
        &self.z
    }

    /// Number of inducing points `m`.
    pub fn m(&self) -> usize {
        self.z.len()
    }

    /// Observations absorbed (fit set plus frozen-set updates).
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True when no observations are held (unreachable for a fitted
    /// model; present for API symmetry with [`Gp`]).
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// The fitted kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// The fitted log noise variance (standardized-y units).
    pub fn log_noise(&self) -> f64 {
        self.log_noise
    }
}

/// A sparse surrogate maintained across `observe` calls: frozen-set
/// O(m²) updates between scheduled inducing-set reselections, mirroring
/// [`IncrementalGp`](crate::IncrementalGp)'s refit schedule. The NLL
/// degradation trigger does not apply (the sparse model has no cheap
/// exact NLL); reselection is count-driven via [`RefitSchedule::every`]
/// and [`RefitSchedule::min_points`].
#[derive(Debug, Clone)]
pub struct IncrementalSparseGp {
    config: SparseGpConfig,
    schedule: RefitSchedule,
    gp: Option<SparseGp>,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    updates_since_full: usize,
    prev_theta: Option<Vec<f64>>,
}

impl IncrementalSparseGp {
    /// An empty incremental sparse surrogate; the first `observe`
    /// triggers the initial selection and fit.
    pub fn new(config: SparseGpConfig, schedule: RefitSchedule) -> Self {
        IncrementalSparseGp {
            config,
            schedule,
            gp: None,
            x: Vec::new(),
            y: Vec::new(),
            updates_since_full: 0,
            prev_theta: None,
        }
    }

    /// Build an incremental sparse surrogate already holding `(x, y)` —
    /// the tier-escalation entry point: the existing history is absorbed
    /// with one reselection + fit.
    pub fn with_history<R: Rng>(
        config: SparseGpConfig,
        schedule: RefitSchedule,
        x: Vec<Vec<f64>>,
        y: Vec<f64>,
        rng: &mut R,
    ) -> Result<Self, GpError> {
        let mut inc = Self::new(config, schedule);
        inc.x = x;
        inc.y = y;
        if !inc.x.is_empty() {
            inc.full_reselect(rng, "escalation")?;
        }
        Ok(inc)
    }

    /// Absorb one observation: frozen-set update when the schedule
    /// allows, inducing-set reselection + refit when it demands.
    pub fn observe<R: Rng>(&mut self, xnew: &[f64], ynew: f64, rng: &mut R) -> Result<(), GpError> {
        self.x.push(xnew.to_vec());
        self.y.push(ynew);
        if self.gp.is_none() || self.x.len() <= self.schedule.min_points {
            return self.full_reselect(rng, "schedule");
        }
        let gp = self.gp.as_mut().expect("checked above");
        if gp.update(xnew, ynew).is_err() {
            return self.full_reselect(rng, "fallback");
        }
        self.updates_since_full += 1;
        if self.schedule.every > 0 && self.updates_since_full >= self.schedule.every {
            return self.full_reselect(rng, "schedule");
        }
        obs::count(obs::names::CTR_INCREMENTAL_UPDATES, 1);
        obs::record_with(|| obs::Event::Refit {
            model: "sparse-gp".to_string(),
            points: self.x.len() as u64,
            reason: "append".to_string(),
            full: false,
            updates_since_full: self.updates_since_full as u64,
            nll_per_point: None,
        });
        Ok(())
    }

    fn full_reselect<R: Rng>(&mut self, rng: &mut R, reason: &str) -> Result<(), GpError> {
        let fixed_noise = matches!(self.config.base.noise, NoiseModel::Fixed(_));
        let warm: Vec<Vec<f64>> = self.prev_theta.iter().cloned().collect();
        let gp = match SparseGp::fit_with_starts(&self.x, &self.y, &self.config, rng, &warm) {
            Ok(gp) => gp,
            Err(e) => {
                // Same invariant as IncrementalGp: never keep a model
                // that does not cover every observed point.
                self.gp = None;
                self.updates_since_full = 0;
                return Err(e);
            }
        };
        self.prev_theta = Some(gp.pack_theta(fixed_noise));
        let updates = std::mem::take(&mut self.updates_since_full) as u64;
        obs::count(obs::names::CTR_FULL_REFITS, 1);
        obs::count(obs::names::CTR_SPARSE_RESELECTIONS, 1);
        obs::record_with(|| obs::Event::Refit {
            model: "sparse-gp".to_string(),
            points: self.x.len() as u64,
            reason: reason.to_string(),
            full: true,
            updates_since_full: updates,
            nll_per_point: None,
        });
        self.gp = Some(gp);
        Ok(())
    }

    /// The current fitted surrogate, `None` before the first observation.
    pub fn gp(&self) -> Option<&SparseGp> {
        self.gp.as_ref()
    }

    /// Posterior prediction through the maintained surrogate.
    ///
    /// Panics when no observation has been absorbed yet.
    pub fn predict(&self, xstar: &[f64]) -> Prediction {
        self.gp
            .as_ref()
            .expect("no observations yet")
            .predict(xstar)
    }

    /// Observations absorbed so far.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// True before the first observation.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }

    /// Frozen-set updates since the last reselection.
    pub fn updates_since_full(&self) -> usize {
        self.updates_since_full
    }

    /// The reselection schedule in force.
    pub fn schedule(&self) -> &RefitSchedule {
        &self.schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn objective(x: &[f64]) -> f64 {
        3.0 + 10.0 * (x[0] - 0.4) * (x[0] - 0.4) + (7.0 * x[0]).sin()
    }

    fn make_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n).map(|_| vec![rng.gen::<f64>()]).collect();
        let y: Vec<f64> = x.iter().map(|xi| objective(xi)).collect();
        (x, y)
    }

    #[test]
    fn farthest_point_ties_break_low_and_mask_chosen() {
        // Three coincident points plus one far point: after (0, far),
        // the remaining duplicates are at distance 0 — the sweep must
        // pick the lowest-index unchosen one, never re-pick a chosen one.
        let x = vec![vec![0.0], vec![0.0], vec![0.0], vec![1.0]];
        let dims = vec![DimKind::Continuous];
        let got = farthest_point_subset(&x, &dims, 3, 0);
        assert_eq!(got, vec![0, 1, 3]);
    }

    #[test]
    fn with_all_points_inducing_matches_exact_gp() {
        // SoR with m = n collapses algebraically to the exact GP
        // posterior; burning the seed-point draw aligns the RNG streams
        // so both fits see identical restart draws. Evenly spread points
        // and a fixed moderate noise keep K_mm well-conditioned so the
        // identity survives finite precision.
        let n = 20;
        let x: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect();
        let y: Vec<f64> = x.iter().map(|xi| objective(xi)).collect();
        let mut cfg = SparseGpConfig::continuous(1);
        cfg.base.restarts = 1;
        cfg.base.noise = NoiseModel::Fixed(1e-2);
        cfg.m_inducing = n;
        let mut rng1 = StdRng::seed_from_u64(9);
        let sparse = SparseGp::fit(&x, &y, &cfg, &mut rng1).unwrap();
        let mut rng2 = StdRng::seed_from_u64(9);
        let _ = rng2.gen_range(0..x.len());
        let exact = Gp::fit(&x, &y, &cfg.base, &mut rng2).unwrap();
        for q in [0.05, 0.31, 0.5, 0.77, 0.96] {
            let a = sparse.predict(&[q]);
            let b = exact.predict(&[q]);
            assert!(
                (a.mean - b.mean).abs() < 1e-4,
                "mean {} vs {}",
                a.mean,
                b.mean
            );
            assert!((a.std - b.std).abs() < 1e-4, "std {} vs {}", a.std, b.std);
        }
    }

    #[test]
    fn update_matches_refit_at_current_inducing() {
        let (x, y) = make_data(60, 23);
        let mut cfg = SparseGpConfig::continuous(1);
        cfg.base.restarts = 1;
        // A fixed moderate noise keeps Σ well-conditioned; the estimated
        // noise would hit its floor on this noise-free objective and
        // amplify benign summation-order differences past the tolerance.
        cfg.base.noise = NoiseModel::Fixed(1e-2);
        cfg.m_inducing = 16;
        let mut rng = StdRng::seed_from_u64(5);
        let mut sparse = SparseGp::fit(&x[..48], &y[..48], &cfg, &mut rng).unwrap();
        for i in 48..60 {
            sparse.update(&x[i], y[i]).unwrap();
        }
        let mut reference = sparse.clone();
        reference.refit_at_current_inducing().unwrap();
        for q in [0.03, 0.25, 0.5, 0.81, 0.99] {
            let a = sparse.predict(&[q]);
            let b = reference.predict(&[q]);
            assert!(
                (a.mean - b.mean).abs() < 1e-6,
                "mean {} vs {}",
                a.mean,
                b.mean
            );
            assert!((a.std - b.std).abs() < 1e-6, "std {} vs {}", a.std, b.std);
        }
    }

    #[test]
    fn parallel_and_serial_assembly_bitwise_identical() {
        let (x, y) = make_data(300, 31);
        let mut par_cfg = SparseGpConfig::continuous(1);
        par_cfg.base.restarts = 1;
        par_cfg.m_inducing = 24;
        let mut ser_cfg = par_cfg.clone();
        ser_cfg.base.parallel = false;
        let mut rng1 = StdRng::seed_from_u64(13);
        let mut rng2 = StdRng::seed_from_u64(13);
        let par = SparseGp::fit(&x, &y, &par_cfg, &mut rng1).unwrap();
        let ser = SparseGp::fit(&x, &y, &ser_cfg, &mut rng2).unwrap();
        assert_eq!(par.inducing_indices(), ser.inducing_indices());
        for q in [0.0, 0.21, 0.5, 0.83, 1.0] {
            assert_eq!(par.predict(&[q]), ser.predict(&[q]));
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let (x, y) = make_data(200, 41);
        let mut cfg = SparseGpConfig::continuous(1);
        cfg.base.restarts = 1;
        cfg.m_inducing = 20;
        let mut rng = StdRng::seed_from_u64(2);
        let sparse = SparseGp::fit(&x, &y, &cfg, &mut rng).unwrap();
        let qs: Vec<Vec<f64>> = (0..600).map(|i| vec![i as f64 / 599.0]).collect();
        let batch = sparse.predict_batch(&qs);
        for (q, b) in qs.iter().zip(batch.iter()) {
            assert_eq!(*b, sparse.predict(q));
        }
    }

    #[test]
    fn incremental_sparse_appends_between_reselections() {
        let mut cfg = SparseGpConfig::continuous(1);
        cfg.base.restarts = 1;
        cfg.m_inducing = 12;
        let schedule = RefitSchedule {
            every: 8,
            min_points: 1,
            nll_degradation: f64::INFINITY,
            ..RefitSchedule::default()
        };
        let mut inc = IncrementalSparseGp::new(cfg, schedule);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let x = vec![rng.gen::<f64>()];
            let y = objective(&x);
            inc.observe(&x, y, &mut rng).unwrap();
        }
        // n=1 fit, counts 1..8 (reselect at 8), 1..8 (reselect at 17),
        // then three frozen-set appends.
        assert_eq!(inc.updates_since_full(), 3);
        assert_eq!(inc.len(), 20);
    }

    #[test]
    fn with_history_absorbs_existing_points() {
        let (x, y) = make_data(80, 53);
        let mut cfg = SparseGpConfig::continuous(1);
        cfg.base.restarts = 1;
        cfg.m_inducing = 16;
        let mut rng = StdRng::seed_from_u64(7);
        let inc = IncrementalSparseGp::with_history(
            cfg,
            RefitSchedule::default(),
            x.clone(),
            y.clone(),
            &mut rng,
        )
        .unwrap();
        assert_eq!(inc.len(), 80);
        assert_eq!(inc.gp().unwrap().m(), 16);
        let p = inc.predict(&[0.4]);
        assert!(p.mean.is_finite() && p.std.is_finite());
    }
}
