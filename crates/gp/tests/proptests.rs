//! Property-based tests for the GP stack.

use crowdtune_gp::{DimKind, Gp, GpConfig, Kernel, KernelKind, Lcm, LcmConfig, TaskData};
use crowdtune_linalg::{Cholesky, Matrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unit_points(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
    use rand::Rng;
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn kernel_gram_matrices_are_psd(
        seed in 0u64..10_000,
        n in 2usize..12,
        d in 1usize..4,
        matern in proptest::bool::ANY,
        ls in -1.5f64..1.0,
    ) {
        let kind = if matern { KernelKind::Matern52 } else { KernelKind::SquaredExponential };
        let mut kern = Kernel::continuous(kind, d);
        for l in kern.log_lengthscales.iter_mut() {
            *l = ls;
        }
        let x = unit_points(n, d, seed);
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                k[(i, j)] = kern.eval(&x[i], &x[j]);
            }
        }
        // PSD up to jitter.
        prop_assert!(Cholesky::robust(&k).is_ok());
    }

    #[test]
    fn gp_posterior_std_nonnegative_and_bounded(
        seed in 0u64..10_000,
        n in 1usize..10,
    ) {
        let x = unit_points(n, 2, seed);
        let y: Vec<f64> = x.iter().map(|p| p[0] * 3.0 - p[1]).collect();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let mut config = GpConfig::continuous(2);
        config.restarts = 0;
        config.max_opt_iter = 20;
        let gp = Gp::fit(&x, &y, &config, &mut rng).unwrap();
        for q in unit_points(16, 2, seed ^ 0x1234) {
            let p = gp.predict(&q);
            prop_assert!(p.std >= 0.0);
            prop_assert!(p.mean.is_finite());
            prop_assert!(p.std.is_finite());
        }
    }

    #[test]
    fn gp_mean_close_at_training_points_with_tiny_noise(
        seed in 0u64..10_000,
    ) {
        let x = unit_points(8, 1, seed);
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 6.0).cos()).collect();
        let kernel = Kernel::continuous(KernelKind::SquaredExponential, 1);
        let gp = Gp::with_hypers(kernel, (1e-8f64).ln(), &x, &y).unwrap();
        for (xi, &yi) in x.iter().zip(&y) {
            let p = gp.predict(xi);
            // With near-zero noise the posterior interpolates. Duplicated or
            // near-duplicated random points can need jitter, so allow slack.
            prop_assert!((p.mean - yi).abs() < 0.15, "pred {} vs {}", p.mean, yi);
        }
    }

    #[test]
    fn lcm_prediction_finite_for_any_task(
        seed in 0u64..5_000,
        n_src in 3usize..12,
        n_tgt in 0usize..4,
    ) {
        let xs = unit_points(n_src, 1, seed);
        let src = TaskData {
            y: xs.iter().map(|p| p[0] * 2.0).collect(),
            x: xs,
        };
        let xt = unit_points(n_tgt, 1, seed ^ 77);
        let tgt = TaskData {
            y: xt.iter().map(|p| p[0] * 2.0 + 0.5).collect(),
            x: xt,
        };
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9999);
        let mut config = LcmConfig::continuous(1);
        config.restarts = 0;
        config.max_opt_iter = 15;
        let lcm = Lcm::fit(&[src, tgt], &config, &mut rng).unwrap();
        for t in 0..2 {
            for q in unit_points(5, 1, seed ^ 0x42) {
                let p = lcm.predict(t, &q);
                prop_assert!(p.mean.is_finite());
                prop_assert!(p.std.is_finite() && p.std >= 0.0);
            }
        }
    }

    #[test]
    fn categorical_kernel_gram_psd(seed in 0u64..10_000, n in 2usize..10) {
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        // Mixed space: one continuous, one categorical with 3 cells.
        let kern = Kernel::new(
            KernelKind::Matern52,
            vec![DimKind::Continuous, DimKind::Categorical],
        );
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let cat = rng.gen_range(0..3) as f64;
                vec![rng.gen::<f64>(), (cat + 0.5) / 3.0]
            })
            .collect();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                k[(i, j)] = kern.eval(&x[i], &x[j]);
            }
        }
        prop_assert!(Cholesky::robust(&k).is_ok());
    }
}
