//! Cholesky factorization with automatic jitter escalation.
//!
//! Gaussian-process covariance matrices are symmetric positive definite in
//! exact arithmetic but frequently lose definiteness to rounding when two
//! sample points nearly coincide. The standard remedy — and the one GPTune
//! itself uses — is to add a small multiple of the identity ("jitter") and
//! retry, growing the jitter geometrically until the factorization succeeds.

use crate::matrix::{row_chunks, Matrix};
use crowdtune_obs as obs;
use rayon::prelude::*;

/// Matrices at least this large are factored with the blocked
/// right-looking algorithm. The dispatch depends on the matrix size
/// ONLY — never on the thread count — because the blocked and unblocked
/// factorizations accumulate in different orders and therefore round
/// differently; tying the choice to size keeps results reproducible
/// across machines with different core counts.
const BLOCKED_MIN_DIM: usize = 128;

/// Panel width of the blocked factorization. 64 columns keeps the
/// panel plus a stripe of the trailing matrix resident in L2 cache.
const CHOL_BLOCK: usize = 64;

/// Error raised when a matrix cannot be factorized even with the maximum
/// permitted jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Jitter level at which the factorization was abandoned.
    pub max_jitter_tried: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (jitter up to {:.3e} tried)",
            self.max_jitter_tried
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// A lower-triangular Cholesky factor `L` with `L * L^T = A + jitter * I`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// The jitter that had to be added for the factorization to succeed
    /// (0.0 when the matrix was positive definite as given).
    pub jitter: f64,
}

impl Cholesky {
    /// Factorize a symmetric positive definite matrix without jitter.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        Self::with_jitter(a, 0.0, 0.0)
    }

    /// Factorize, escalating jitter from `initial_jitter` (or a scale-aware
    /// default when 0) by 10x per attempt up to `max_jitter`.
    ///
    /// A `max_jitter` of 0 allows a single attempt with `initial_jitter`.
    pub fn with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_jitter: f64,
    ) -> Result<Self, NotPositiveDefinite> {
        assert!(a.is_square(), "Cholesky requires a square matrix");
        let n = a.rows();
        // Scale-aware default starting jitter: machine epsilon times the
        // mean diagonal magnitude.
        let diag_scale = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        let mut jitter = if initial_jitter > 0.0 {
            initial_jitter
        } else {
            0.0
        };
        let fallback_start = 1e-12 * diag_scale.max(1e-300);
        let mut attempts: u64 = 0;
        loop {
            attempts += 1;
            match try_factor(a, jitter) {
                Some(l) => {
                    if attempts > 1 {
                        // The matrix was indefinite as given and was silently
                        // rescued by jitter: surface the recovery.
                        obs::count(obs::names::CTR_JITTER_ESCALATIONS, 1);
                        obs::record_with(|| obs::Event::Jitter {
                            dim: n as u64,
                            jitter,
                            attempts,
                            recovered: true,
                        });
                    }
                    return Ok(Cholesky { l, jitter });
                }
                None => {
                    let next = if jitter == 0.0 {
                        fallback_start
                    } else {
                        jitter * 10.0
                    };
                    if next > max_jitter || !next.is_finite() {
                        if attempts > 1 {
                            obs::count(obs::names::CTR_JITTER_EXHAUSTED, 1);
                            obs::record_with(|| obs::Event::Jitter {
                                dim: n as u64,
                                jitter,
                                attempts,
                                recovered: false,
                            });
                        }
                        return Err(NotPositiveDefinite {
                            max_jitter_tried: jitter,
                        });
                    }
                    jitter = next;
                }
            }
        }
    }

    /// Factorize with the default escalation policy used throughout the GP
    /// stack: start at eps-scale jitter, give up past `1e-4 * diag`.
    pub fn robust(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        let diag_scale = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        Self::with_jitter(a, 0.0, 1e-4 * diag_scale.max(1e-12))
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` using the factor (forward then backward substitution).
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        solve_lower_in_place(&self.l, &mut y);
        solve_lower_transpose_in_place(&self.l, &mut y);
        y
    }

    /// Solve `A X = B` column by column.
    ///
    /// Columns are independent, so large systems are solved
    /// column-parallel; each column runs exactly the substitutions of
    /// [`Cholesky::solve_vec`], making the result bitwise identical at
    /// any thread count.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim());
        let n = b.rows();
        let m = b.cols();
        let solve_col = |c: usize| -> Vec<f64> {
            let mut col: Vec<f64> = (0..n).map(|r| b[(r, c)]).collect();
            solve_lower_in_place(&self.l, &mut col);
            solve_lower_transpose_in_place(&self.l, &mut col);
            col
        };
        self.assemble_columns(m, solve_col, 2 * n * n * m)
    }

    /// Solve `L y = b` only (forward substitution).
    pub fn solve_lower_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        solve_lower_in_place(&self.l, &mut y);
        y
    }

    /// Solve `L Y = B` only (forward substitution, column by column),
    /// column-parallel for large systems. Column `c` of the result is
    /// bitwise identical to `solve_lower_vec` applied to column `c`
    /// of `b`.
    pub fn solve_lower_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim());
        let n = b.rows();
        let m = b.cols();
        let solve_col = |c: usize| -> Vec<f64> {
            let mut col: Vec<f64> = (0..n).map(|r| b[(r, c)]).collect();
            solve_lower_in_place(&self.l, &mut col);
            col
        };
        self.assemble_columns(m, solve_col, n * n * m)
    }

    /// The log-determinant of `A`: `2 * sum(log(L_ii))`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The inverse of `A`, assembled by solving against identity
    /// columns; used for gradient computations where `A^{-1}` itself is
    /// required (trace terms of the marginal-likelihood gradient).
    ///
    /// Exploits the structure of `e_c`: the forward substitution
    /// `L y = e_c` yields `y[0..c] = 0`, so it starts at row `c`,
    /// halving the forward phase on average versus a dense solve.
    /// Columns run in parallel and each is computed with the same
    /// operation order at any thread count.
    pub fn inverse(&self) -> Matrix {
        // `A⁻¹ = L⁻ᵀ L⁻¹`, assembled as a symmetric product of the
        // explicit inverse factor: entry `(i, j)` with `i ≤ j` is the
        // dot of columns `i` and `j` of `L⁻¹` over rows `k ≥ j` (both
        // columns are structurally zero above their index). Costs
        // ~`n³/6` for the factor plus ~`n³/6` for the product —
        // roughly 3× cheaper than solving against a dense identity,
        // and every dot is an independent contiguous reduction.
        let n = self.dim();
        let u = self.inverse_lower().transpose();
        let threads = rayon::current_num_threads();
        let flops = n * n * n / 3;
        let fill_rows = |range: std::ops::Range<usize>| -> Vec<f64> {
            let mut buf = Vec::with_capacity(range.len() * n);
            for i in range {
                buf.extend(std::iter::repeat_n(0.0, i));
                let ui = u.row(i);
                for j in i..n {
                    buf.push(crate::matrix::dot(&ui[j..], &u.row(j)[j..]));
                }
            }
            buf
        };
        let chunks = if threads > 1 && n >= 2 && flops >= crate::matrix::PAR_MIN_FLOPS {
            // Extra pieces balance the triangular row costs.
            row_chunks(n, threads * 4)
                .into_par_iter()
                .map(fill_rows)
                .collect::<Vec<_>>()
        } else {
            vec![fill_rows(0..n)]
        };
        let data: Vec<f64> = chunks.into_iter().flatten().collect();
        let mut out = Matrix::from_raw(n, n, data);
        for i in 0..n {
            for j in 0..i {
                out[(i, j)] = out[(j, i)];
            }
        }
        out
    }

    /// Explicit inverse of the lower factor, `L⁻¹` (lower triangular,
    /// row-major).
    ///
    /// Column `c` is the forward solve of the unit vector `e_c`, which
    /// is structurally zero above row `c`, so the whole factor costs
    /// ~`n³/6` flops. Having `L⁻¹` materialized turns each posterior
    /// variance `‖L⁻¹ k*‖²` into independent contiguous dot products
    /// instead of a loop-carried triangular solve.
    pub fn inverse_lower(&self) -> Matrix {
        let n = self.dim();
        let solve_col = |c: usize| -> Vec<f64> {
            let mut y = vec![0.0; n];
            for i in c..n {
                let row = self.l.row(i);
                let mut s = if i == c { 1.0 } else { 0.0 };
                for k in c..i {
                    s -= row[k] * y[k];
                }
                y[i] = s / row[i];
            }
            y
        };
        self.assemble_columns(n, solve_col, n * n * n / 6)
    }

    /// Extend the factor with one new row/column in O(n²).
    ///
    /// Given the current factor of an `n × n` matrix `A` and the new
    /// covariance column `k_new = A⁺[0..n, n]` plus diagonal
    /// `k_diag = A⁺[n, n]` of the grown matrix `A⁺`, this appends the row
    /// `[l₂₁ᵀ, λ]` with
    ///
    /// ```text
    /// L l₂₁ = k_new          (forward substitution, O(n²))
    /// λ     = sqrt(k_diag + jitter - ‖l₂₁‖²)
    /// ```
    ///
    /// so that `L⁺ L⁺ᵀ = A⁺ + jitter·I` continues to hold. The existing
    /// `self.jitter` is applied to the new diagonal for consistency with
    /// the factored block. When the pivot is non-positive the appended
    /// diagonal escalates extra jitter through the same 10× ladder as
    /// [`Cholesky::with_jitter`] (eps-scale start, capped at
    /// `max_jitter`), journaling the recovery; the extra jitter lands on
    /// the appended diagonal only, so a caller that needs a uniform-jitter
    /// factor should refactorize from scratch — the GP layer's scheduled
    /// full refits do exactly that. Returns an error when the ladder is
    /// exhausted (the appended point makes the matrix numerically
    /// indefinite), leaving the factor untouched.
    pub fn append_row(
        &mut self,
        k_new: &[f64],
        k_diag: f64,
        max_jitter: f64,
    ) -> Result<(), NotPositiveDefinite> {
        let n = self.dim();
        assert_eq!(
            k_new.len(),
            n,
            "append_row needs one entry per factored row"
        );
        let mut l21 = k_new.to_vec();
        solve_lower_in_place(&self.l, &mut l21);
        let norm_sq: f64 = l21.iter().map(|v| v * v).sum();
        // The pivot is a scalar, so "retry at higher jitter" is pure
        // arithmetic — same ladder as the full factorization, no O(n²)
        // work repeated.
        let fallback_start = 1e-12 * k_diag.abs().max(1e-300);
        let mut extra = 0.0f64;
        let mut attempts: u64 = 0;
        let pivot = loop {
            attempts += 1;
            let d = k_diag + self.jitter + extra - norm_sq;
            if d > 0.0 && d.is_finite() {
                break d;
            }
            let next = if extra == 0.0 {
                fallback_start
            } else {
                extra * 10.0
            };
            if next > max_jitter || !next.is_finite() {
                obs::count(obs::names::CTR_JITTER_EXHAUSTED, 1);
                obs::record_with(|| obs::Event::Jitter {
                    dim: (n + 1) as u64,
                    jitter: self.jitter + extra,
                    attempts,
                    recovered: false,
                });
                return Err(NotPositiveDefinite {
                    max_jitter_tried: self.jitter + extra,
                });
            }
            extra = next;
        };
        if attempts > 1 {
            obs::count(obs::names::CTR_JITTER_ESCALATIONS, 1);
            obs::record_with(|| obs::Event::Jitter {
                dim: (n + 1) as u64,
                jitter: self.jitter + extra,
                attempts,
                recovered: true,
            });
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for i in 0..n {
            grown.row_mut(i)[..=i].copy_from_slice(&self.l.row(i)[..=i]);
        }
        grown.row_mut(n)[..n].copy_from_slice(&l21);
        grown[(n, n)] = pivot.sqrt();
        self.l = grown;
        // Report the largest diagonal jitter present in the factor.
        self.jitter = self.jitter.max(self.jitter + extra);
        Ok(())
    }

    /// Extend a precomputed `L⁻¹` to match a factor just grown by
    /// [`Cholesky::append_row`], in O(n²).
    ///
    /// With `L⁺ = [[L, 0], [l₂₁ᵀ, λ]]`, the inverse grows as
    ///
    /// ```text
    /// L⁺⁻¹ = [[L⁻¹, 0], [-(1/λ)·(l₂₁ᵀ L⁻¹), 1/λ]]
    /// ```
    ///
    /// — the existing rows are unchanged and the new row is one
    /// vector-matrix product against the old inverse. `linv` must be the
    /// inverse of the factor *before* the append (`linv.rows() + 1 ==
    /// self.dim()`).
    pub fn extend_inverse_lower(&self, linv: &Matrix) -> Matrix {
        let n1 = self.dim();
        assert!(n1 >= 1, "extend_inverse_lower needs an appended factor");
        let n = n1 - 1;
        assert_eq!(
            linv.rows(),
            n,
            "linv must invert the factor before the append"
        );
        let lrow = self.l.row(n);
        let lambda = lrow[n];
        let mut out = Matrix::zeros(n1, n1);
        for i in 0..n {
            out.row_mut(i)[..=i].copy_from_slice(&linv.row(i)[..=i]);
        }
        // new_row[j] = -(1/λ) Σ_i l₂₁[i]·L⁻¹[i][j]; L⁻¹ is lower
        // triangular, so row i only contributes to columns j ≤ i.
        let new_row = out.row_mut(n);
        for (i, &li) in lrow.iter().enumerate().take(n) {
            if li != 0.0 {
                let src = &linv.row(i)[..=i];
                for (o, &s) in new_row.iter_mut().zip(src.iter()) {
                    *o += li * s;
                }
            }
        }
        let inv_lambda = 1.0 / lambda;
        for v in new_row[..n].iter_mut() {
            *v = -*v * inv_lambda;
        }
        new_row[n] = inv_lambda;
        out
    }

    /// Run `solve_col` for every column index in `0..m` — in parallel
    /// when `work` (a flop estimate) crosses the cutoff — and pack the
    /// results into a row-major matrix.
    fn assemble_columns<F>(&self, m: usize, solve_col: F, work: usize) -> Matrix
    where
        F: Fn(usize) -> Vec<f64> + Sync,
    {
        let n = self.dim();
        let threads = rayon::current_num_threads();
        let cols: Vec<Vec<f64>> = if threads > 1 && m >= 2 && work >= crate::matrix::PAR_MIN_FLOPS {
            (0..m).into_par_iter().map(solve_col).collect()
        } else {
            (0..m).map(solve_col).collect()
        };
        let mut out = Matrix::zeros(n, m);
        for (c, col) in cols.iter().enumerate() {
            for (r, &v) in col.iter().enumerate() {
                out[(r, c)] = v;
            }
        }
        out
    }
}

fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
    // Size-only dispatch: see `BLOCKED_MIN_DIM`.
    if a.rows() < BLOCKED_MIN_DIM {
        try_factor_unblocked(a, jitter)
    } else {
        try_factor_blocked(a, jitter)
    }
}

fn try_factor_unblocked(a: &Matrix, jitter: f64) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)] + jitter;
        let lrow_j: Vec<f64> = (0..j).map(|k| l[(j, k)]).collect();
        d -= lrow_j.iter().map(|x| x * x).sum::<f64>();
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            // dot(L[i, 0..j], L[j, 0..j])
            let li = l.row(i);
            let mut acc = 0.0;
            for k in 0..j {
                acc += li[k] * lrow_j[k];
            }
            s -= acc;
            l[(i, j)] = s / djj;
        }
    }
    Some(l)
}

/// Blocked right-looking Cholesky: factor a `CHOL_BLOCK`-wide panel,
/// triangular-solve the rows below it, then downdate the trailing
/// submatrix with the panel's outer product. The panel solve and the
/// trailing update are row-parallel; every row is produced by the same
/// instruction sequence no matter how rows are split across threads,
/// so the factor is bitwise identical at any thread count.
fn try_factor_blocked(a: &Matrix, jitter: f64) -> Option<Matrix> {
    let n = a.rows();
    let threads = rayon::current_num_threads();
    // Copy the lower triangle (plus jitter on the diagonal) and factor
    // it in place, block column by block column.
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        let src = &a.row(i)[..=i];
        let dst = &mut l.row_mut(i)[..=i];
        dst.copy_from_slice(src);
        dst[i] += jitter;
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + CHOL_BLOCK).min(n);
        let nb = j1 - j0;
        // 1. Factor the diagonal block in place (unblocked). It has
        //    already absorbed every previous panel's trailing update,
        //    so only within-block corrections remain.
        for j in j0..j1 {
            let mut d = l[(j, j)];
            for k in j0..j {
                let v = l[(j, k)];
                d -= v * v;
            }
            if d <= 0.0 || !d.is_finite() {
                return None;
            }
            let djj = d.sqrt();
            l[(j, j)] = djj;
            for i in (j + 1)..j1 {
                let mut s = l[(i, j)];
                for k in j0..j {
                    s -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = s / djj;
            }
        }
        if j1 == n {
            break;
        }
        // 2. Panel solve: L21 satisfies L21 * L11^T = A21. One
        //    independent forward substitution per row below the block.
        let panel_rows = n - j1;
        let chunks = row_chunks(panel_rows, threads);
        let panel: Vec<Vec<f64>> = chunks
            .clone()
            .into_par_iter()
            .map(|range| {
                let mut buf = vec![0.0; range.len() * nb];
                for (bi, r) in range.enumerate() {
                    let i = j1 + r;
                    let li = l.row(i);
                    let out = &mut buf[bi * nb..(bi + 1) * nb];
                    for (jj, j) in (j0..j1).enumerate() {
                        let lj = &l.row(j)[j0..j];
                        let mut s = li[j];
                        for (k, &ljk) in lj.iter().enumerate() {
                            s -= out[k] * ljk;
                        }
                        out[jj] = s / l[(j, j)];
                    }
                }
                buf
            })
            .collect();
        for (chunk, buf) in chunks.iter().zip(panel.iter()) {
            for (bi, r) in chunk.clone().enumerate() {
                l.row_mut(j1 + r)[j0..j1].copy_from_slice(&buf[bi * nb..(bi + 1) * nb]);
            }
        }
        // 3. Trailing update: A22 -= L21 * L21^T (lower triangle only),
        //    row-parallel. Extra chunks smooth out the triangular load.
        let chunks = row_chunks(panel_rows, threads * 4);
        let updates: Vec<Vec<f64>> = chunks
            .clone()
            .into_par_iter()
            .map(|range| {
                let mut buf = Vec::with_capacity(range.clone().map(|r| r + 1).sum());
                for r in range {
                    let i = j1 + r;
                    let pi = &l.row(i)[j0..j1];
                    for j in j1..=i {
                        let pj = &l.row(j)[j0..j1];
                        let mut acc = 0.0;
                        for (x, y) in pi.iter().zip(pj.iter()) {
                            acc += x * y;
                        }
                        buf.push(l[(i, j)] - acc);
                    }
                }
                buf
            })
            .collect();
        for (chunk, buf) in chunks.iter().zip(updates.iter()) {
            let mut pos = 0;
            for r in chunk.clone() {
                let i = j1 + r;
                let len = i - j1 + 1;
                l.row_mut(i)[j1..=i].copy_from_slice(&buf[pos..pos + len]);
                pos += len;
            }
        }
        j0 = j1;
    }
    Some(l)
}

/// Solve `L y = b` in place for lower-triangular `L`.
pub fn solve_lower_in_place(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n);
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for k in 0..i {
            s -= row[k] * b[k];
        }
        b[i] = s / row[i];
    }
}

/// Solve `L^T y = b` in place for lower-triangular `L`.
pub fn solve_lower_transpose_in_place(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n);
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * b[k];
        }
        b[i] = s / l[(i, i)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn spd_3x3() -> Matrix {
        // A = B^T B + I for a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]);
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        assert!(recon.max_abs_diff(&a) < 1e-10);
        assert_eq!(ch.jitter, 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, -2.0, 0.25];
        let x = ch.solve_vec(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let det: f64 = 4.0 * 3.0 - 1.0;
        assert!((ch.log_det() - det.ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected_without_jitter() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 PSD matrix: singular, needs jitter.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::robust(&a).unwrap();
        assert!(ch.jitter > 0.0);
        let recon = ch.l().matmul(&ch.l().transpose());
        // Reconstruction matches A up to the added jitter.
        assert!(recon.max_abs_diff(&a) < ch.jitter * 2.0 + 1e-12);
    }

    #[test]
    fn strongly_indefinite_fails_even_robust() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[10.0, 1.0]]);
        assert!(Cholesky::robust(&a).is_err());
    }

    #[test]
    fn forward_substitution_lower() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let mut b = vec![4.0, 11.0];
        solve_lower_in_place(&l, &mut b);
        assert!((b[0] - 2.0).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn backward_substitution_lower_transpose() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        // L^T = [[2,1],[0,3]]; solve L^T y = [4, 9] => y = [(4-3)/2, 3] = [0.5, 3]
        let mut b = vec![4.0, 9.0];
        solve_lower_transpose_in_place(&l, &mut b);
        assert!((b[0] - 0.5).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    /// Well-conditioned SPD matrix large enough to cross `BLOCKED_MIN_DIM`.
    fn spd_large(n: usize) -> Matrix {
        let mut a = Matrix::from_fn(n, n, |i, j| {
            let d = i.abs_diff(j) as f64;
            (-d * d / (2.0 * 9.0)).exp()
        });
        for i in 0..n {
            a[(i, i)] += 0.5;
        }
        a
    }

    #[test]
    fn blocked_factor_reconstructs() {
        let n = super::BLOCKED_MIN_DIM + 33; // odd tail block
        let a = spd_large(n);
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        assert!(
            recon.max_abs_diff(&a) < 1e-10,
            "diff {}",
            recon.max_abs_diff(&a)
        );
        // Strictly lower-triangular result.
        for i in 0..n {
            for j in (i + 1)..n {
                assert_eq!(ch.l()[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn blocked_matches_unblocked_within_tolerance() {
        let n = super::BLOCKED_MIN_DIM;
        let a = spd_large(n);
        let blocked = super::try_factor_blocked(&a, 0.0).unwrap();
        let unblocked = super::try_factor_unblocked(&a, 0.0).unwrap();
        assert!(blocked.max_abs_diff(&unblocked) < 1e-11);
    }

    #[test]
    fn blocked_detects_indefiniteness() {
        let n = super::BLOCKED_MIN_DIM + 5;
        let mut a = spd_large(n);
        // Poison a late diagonal entry so failure surfaces in a
        // trailing block, after several successful panels.
        a[(n - 2, n - 2)] = -50.0;
        a.symmetrize_mut();
        assert!(super::try_factor_blocked(&a, 0.0).is_none());
    }

    #[test]
    fn large_solve_and_inverse_consistent() {
        let n = super::BLOCKED_MIN_DIM + 1;
        let a = spd_large(n);
        let ch = Cholesky::new(&a).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let x = ch.solve_vec(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-9);
        }
        let inv = ch.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-9);
    }

    #[test]
    fn inverse_matches_solve_against_identity() {
        // The structured inverse (zero-skipping forward phase) must
        // agree with the dense identity solve to rounding noise.
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let dense = ch.solve_matrix(&Matrix::identity(3));
        assert!(ch.inverse().max_abs_diff(&dense) < 1e-14);
        // And on a size that crosses the parallel work cutoff.
        let a = spd_large(80);
        let ch = Cholesky::new(&a).unwrap();
        let dense = ch.solve_matrix(&Matrix::identity(80));
        assert!(ch.inverse().max_abs_diff(&dense) < 1e-11);
    }

    #[test]
    fn inverse_lower_inverts_the_factor() {
        let a = spd_large(50);
        let ch = Cholesky::new(&a).unwrap();
        let prod = ch.l().matmul(&ch.inverse_lower());
        assert!(prod.max_abs_diff(&Matrix::identity(50)) < 1e-12);
    }

    #[test]
    fn solve_lower_matrix_matches_vec() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0, 4.0], &[-2.0, 5.0], &[0.25, -6.0]]);
        let ym = ch.solve_lower_matrix(&b);
        for c in 0..2 {
            let col: Vec<f64> = (0..3).map(|r| b[(r, c)]).collect();
            let yv = ch.solve_lower_vec(&col);
            for r in 0..3 {
                // Bitwise: same substitutions in the same order.
                assert_eq!(ym[(r, c)], yv[r]);
            }
        }
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[9.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 3.0).abs() < 1e-15);
        assert_eq!(ch.solve_vec(&[18.0]), vec![2.0]);
    }

    /// Leading principal submatrix of `a`.
    fn leading(a: &Matrix, n: usize) -> Matrix {
        Matrix::from_fn(n, n, |i, j| a[(i, j)])
    }

    #[test]
    fn append_row_matches_from_scratch_factor() {
        let n = 40;
        let a = spd_large(n);
        let mut ch = Cholesky::new(&leading(&a, n - 5)).unwrap();
        for m in (n - 5)..n {
            let k_new: Vec<f64> = (0..m).map(|i| a[(i, m)]).collect();
            ch.append_row(&k_new, a[(m, m)], 1e-4).unwrap();
        }
        let full = Cholesky::new(&a).unwrap();
        assert!(ch.l().max_abs_diff(full.l()) < 1e-11);
        assert_eq!(ch.jitter, 0.0);
    }

    #[test]
    fn append_row_crosses_blocked_boundary() {
        // Grow an unblocked-size factor past BLOCKED_MIN_DIM; appended
        // rows must stay consistent with the blocked from-scratch path.
        let n = super::BLOCKED_MIN_DIM + 3;
        let a = spd_large(n);
        let start = super::BLOCKED_MIN_DIM - 2;
        let mut ch = Cholesky::new(&leading(&a, start)).unwrap();
        for m in start..n {
            let k_new: Vec<f64> = (0..m).map(|i| a[(i, m)]).collect();
            ch.append_row(&k_new, a[(m, m)], 1e-4).unwrap();
        }
        let full = Cholesky::new(&a).unwrap();
        assert!(ch.l().max_abs_diff(full.l()) < 1e-10);
    }

    #[test]
    fn extend_inverse_lower_matches_recomputed() {
        let n = 30;
        let a = spd_large(n);
        let mut ch = Cholesky::new(&leading(&a, n - 1)).unwrap();
        let linv = ch.inverse_lower();
        let k_new: Vec<f64> = (0..n - 1).map(|i| a[(i, n - 1)]).collect();
        ch.append_row(&k_new, a[(n - 1, n - 1)], 1e-4).unwrap();
        let extended = ch.extend_inverse_lower(&linv);
        assert!(extended.max_abs_diff(&ch.inverse_lower()) < 1e-11);
        let prod = ch.l().matmul(&extended);
        assert!(prod.max_abs_diff(&Matrix::identity(n)) < 1e-11);
    }

    #[test]
    fn append_jitter_rescues_duplicate_point() {
        // Appending an exact duplicate row makes the grown matrix
        // singular; the escalation ladder must rescue the pivot.
        let a = spd_3x3();
        let mut ch = Cholesky::new(&a).unwrap();
        let dup: Vec<f64> = (0..3).map(|i| a[(i, 0)]).collect();
        ch.append_row(&dup, a[(0, 0)], 1e-4).unwrap();
        assert!(ch.jitter > 0.0, "escalation must be recorded");
        assert_eq!(ch.dim(), 4);
        // The factor stays usable: L L^T matches the grown matrix up to
        // the appended-diagonal jitter.
        let mut grown = Matrix::from_fn(4, 4, |i, j| a[(i.min(2), j.min(2))]);
        grown[(3, 3)] = a[(0, 0)];
        for i in 0..3 {
            grown[(i, 3)] = a[(i, 0)];
            grown[(3, i)] = a[(0, i)];
        }
        let recon = ch.l().matmul(&ch.l().transpose());
        assert!(recon.max_abs_diff(&grown) < ch.jitter * 2.0 + 1e-10);
    }

    #[test]
    fn append_exhaustion_leaves_factor_untouched() {
        let a = spd_3x3();
        let mut ch = Cholesky::new(&a).unwrap();
        let l_before = ch.l().clone();
        // A wildly inconsistent column: no small jitter can fix a
        // pivot this negative.
        let bad = vec![100.0, 100.0, 100.0];
        assert!(ch.append_row(&bad, 1.0, 1e-4).is_err());
        assert_eq!(ch.dim(), 3);
        assert_eq!(ch.l().max_abs_diff(&l_before), 0.0);
    }
}
