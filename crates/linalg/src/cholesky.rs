//! Cholesky factorization with automatic jitter escalation.
//!
//! Gaussian-process covariance matrices are symmetric positive definite in
//! exact arithmetic but frequently lose definiteness to rounding when two
//! sample points nearly coincide. The standard remedy — and the one GPTune
//! itself uses — is to add a small multiple of the identity ("jitter") and
//! retry, growing the jitter geometrically until the factorization succeeds.

use crate::matrix::Matrix;

/// Error raised when a matrix cannot be factorized even with the maximum
/// permitted jitter.
#[derive(Debug, Clone, PartialEq)]
pub struct NotPositiveDefinite {
    /// Jitter level at which the factorization was abandoned.
    pub max_jitter_tried: f64,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "matrix is not positive definite (jitter up to {:.3e} tried)",
            self.max_jitter_tried
        )
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// A lower-triangular Cholesky factor `L` with `L * L^T = A + jitter * I`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
    /// The jitter that had to be added for the factorization to succeed
    /// (0.0 when the matrix was positive definite as given).
    pub jitter: f64,
}

impl Cholesky {
    /// Factorize a symmetric positive definite matrix without jitter.
    pub fn new(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        Self::with_jitter(a, 0.0, 0.0)
    }

    /// Factorize, escalating jitter from `initial_jitter` (or a scale-aware
    /// default when 0) by 10x per attempt up to `max_jitter`.
    ///
    /// A `max_jitter` of 0 allows a single attempt with `initial_jitter`.
    pub fn with_jitter(
        a: &Matrix,
        initial_jitter: f64,
        max_jitter: f64,
    ) -> Result<Self, NotPositiveDefinite> {
        assert!(a.is_square(), "Cholesky requires a square matrix");
        let n = a.rows();
        // Scale-aware default starting jitter: machine epsilon times the
        // mean diagonal magnitude.
        let diag_scale = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        let mut jitter = if initial_jitter > 0.0 { initial_jitter } else { 0.0 };
        let fallback_start = 1e-12 * diag_scale.max(1e-300);
        loop {
            match try_factor(a, jitter) {
                Some(l) => return Ok(Cholesky { l, jitter }),
                None => {
                    let next = if jitter == 0.0 { fallback_start } else { jitter * 10.0 };
                    if next > max_jitter || !next.is_finite() {
                        return Err(NotPositiveDefinite { max_jitter_tried: jitter });
                    }
                    jitter = next;
                }
            }
        }
    }

    /// Factorize with the default escalation policy used throughout the GP
    /// stack: start at eps-scale jitter, give up past `1e-4 * diag`.
    pub fn robust(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        let n = a.rows();
        let diag_scale = if n == 0 {
            1.0
        } else {
            (0..n).map(|i| a[(i, i)].abs()).sum::<f64>() / n as f64
        };
        Self::with_jitter(a, 0.0, 1e-4 * diag_scale.max(1e-12))
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Solve `A x = b` using the factor (forward then backward substitution).
    pub fn solve_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        solve_lower_in_place(&self.l, &mut y);
        solve_lower_transpose_in_place(&self.l, &mut y);
        y
    }

    /// Solve `A X = B` column by column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.dim());
        let mut out = Matrix::zeros(b.rows(), b.cols());
        let mut col = vec![0.0; b.rows()];
        for c in 0..b.cols() {
            for r in 0..b.rows() {
                col[r] = b[(r, c)];
            }
            solve_lower_in_place(&self.l, &mut col);
            solve_lower_transpose_in_place(&self.l, &mut col);
            for r in 0..b.rows() {
                out[(r, c)] = col[r];
            }
        }
        out
    }

    /// Solve `L y = b` only (forward substitution).
    pub fn solve_lower_vec(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        solve_lower_in_place(&self.l, &mut y);
        y
    }

    /// The log-determinant of `A`: `2 * sum(log(L_ii))`.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// The inverse of `A`, assembled by solving against the identity.
    /// O(n^3); used for gradient computations where `A^{-1}` itself is
    /// required (trace terms of the marginal-likelihood gradient).
    pub fn inverse(&self) -> Matrix {
        let n = self.dim();
        self.solve_matrix(&Matrix::identity(n))
    }
}

fn try_factor(a: &Matrix, jitter: f64) -> Option<Matrix> {
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal entry.
        let mut d = a[(j, j)] + jitter;
        let lrow_j: Vec<f64> = (0..j).map(|k| l[(j, k)]).collect();
        d -= lrow_j.iter().map(|x| x * x).sum::<f64>();
        if d <= 0.0 || !d.is_finite() {
            return None;
        }
        let djj = d.sqrt();
        l[(j, j)] = djj;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            // dot(L[i, .0..j], L[j, 0..j])
            let li = l.row(i);
            let mut acc = 0.0;
            for k in 0..j {
                acc += li[k] * lrow_j[k];
            }
            s -= acc;
            l[(i, j)] = s / djj;
        }
    }
    Some(l)
}

/// Solve `L y = b` in place for lower-triangular `L`.
pub fn solve_lower_in_place(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n);
    for i in 0..n {
        let row = l.row(i);
        let mut s = b[i];
        for k in 0..i {
            s -= row[k] * b[k];
        }
        b[i] = s / row[i];
    }
}

/// Solve `L^T y = b` in place for lower-triangular `L`.
pub fn solve_lower_transpose_in_place(l: &Matrix, b: &mut [f64]) {
    let n = l.rows();
    assert_eq!(b.len(), n);
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in (i + 1)..n {
            s -= l[(k, i)] * b[k];
        }
        b[i] = s / l[(i, i)];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn spd_3x3() -> Matrix {
        // A = B^T B + I for a fixed B, guaranteed SPD.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.5], &[0.0, 1.0, -1.0], &[2.0, 0.0, 1.0]]);
        let mut a = b.gram();
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        assert!(recon.max_abs_diff(&a) < 1e-10);
        assert_eq!(ch.jitter, 0.0);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let b = [1.0, -2.0, 0.25];
        let x = ch.solve_vec(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            assert!((got - want).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_matrix_identity_gives_inverse() {
        let a = spd_3x3();
        let ch = Cholesky::new(&a).unwrap();
        let inv = ch.inverse();
        let prod = a.matmul(&inv);
        assert!(prod.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn log_det_matches_2x2_closed_form() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let ch = Cholesky::new(&a).unwrap();
        let det = 4.0 * 3.0 - 1.0;
        assert!((ch.log_det() - (det as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn indefinite_matrix_rejected_without_jitter() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_err());
    }

    #[test]
    fn jitter_rescues_semidefinite() {
        // Rank-1 PSD matrix: singular, needs jitter.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        let ch = Cholesky::robust(&a).unwrap();
        assert!(ch.jitter > 0.0);
        let recon = ch.l().matmul(&ch.l().transpose());
        // Reconstruction matches A up to the added jitter.
        assert!(recon.max_abs_diff(&a) < ch.jitter * 2.0 + 1e-12);
    }

    #[test]
    fn strongly_indefinite_fails_even_robust() {
        let a = Matrix::from_rows(&[&[1.0, 10.0], &[10.0, 1.0]]);
        assert!(Cholesky::robust(&a).is_err());
    }

    #[test]
    fn forward_substitution_lower() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        let mut b = vec![4.0, 11.0];
        solve_lower_in_place(&l, &mut b);
        assert!((b[0] - 2.0).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn backward_substitution_lower_transpose() {
        let l = Matrix::from_rows(&[&[2.0, 0.0], &[1.0, 3.0]]);
        // L^T = [[2,1],[0,3]]; solve L^T y = [4, 9] => y = [(4-3)/2, 3] = [0.5, 3]
        let mut b = vec![4.0, 9.0];
        solve_lower_transpose_in_place(&l, &mut b);
        assert!((b[0] - 0.5).abs() < 1e-14);
        assert!((b[1] - 3.0).abs() < 1e-14);
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(&[&[9.0]]);
        let ch = Cholesky::new(&a).unwrap();
        assert!((ch.l()[(0, 0)] - 3.0).abs() < 1e-15);
        assert_eq!(ch.solve_vec(&[18.0]), vec![2.0]);
    }
}
