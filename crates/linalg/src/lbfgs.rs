//! Limited-memory BFGS with a backtracking Armijo/curvature line search.
//!
//! This is the workhorse for maximizing Gaussian-process log marginal
//! likelihoods (we minimize the negative LML). The implementation is the
//! standard two-loop recursion (Nocedal & Wright, Algorithm 7.4) with a
//! history of `m` curvature pairs and a line search that enforces the
//! Armijo sufficient-decrease condition plus a weak curvature check.
//!
//! The objective is supplied as a closure returning `(value, gradient)`.
//! Non-finite objective values are treated as "step too long" and handled
//! by the line search, which lets callers expose hard domain boundaries
//! (e.g. log-hyperparameters that overflow) simply by returning `f64::INFINITY`.

use crowdtune_obs as obs;

/// Convergence/iteration controls for [`lbfgs`].
#[derive(Debug, Clone)]
pub struct LbfgsOptions {
    /// Maximum outer iterations.
    pub max_iter: usize,
    /// History size (number of stored curvature pairs).
    pub history: usize,
    /// Stop when the infinity norm of the gradient drops below this.
    pub grad_tol: f64,
    /// Stop when the relative objective decrease drops below this.
    pub f_tol: f64,
    /// Maximum line-search halvings per iteration.
    pub max_ls_steps: usize,
}

impl Default for LbfgsOptions {
    fn default() -> Self {
        LbfgsOptions {
            max_iter: 100,
            history: 8,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            max_ls_steps: 30,
        }
    }
}

/// Why the optimizer stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Gradient norm under `grad_tol`.
    GradientSmall,
    /// Relative objective decrease under `f_tol`.
    ObjectiveStalled,
    /// Line search failed to find any decrease.
    LineSearchFailed,
    /// Iteration budget exhausted.
    MaxIterations,
    /// Objective was non-finite at the starting point.
    BadStart,
}

impl StopReason {
    /// Stable lowercase identifier, used by journal events.
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::GradientSmall => "gradient_small",
            StopReason::ObjectiveStalled => "objective_stalled",
            StopReason::LineSearchFailed => "line_search_failed",
            StopReason::MaxIterations => "max_iterations",
            StopReason::BadStart => "bad_start",
        }
    }
}

/// Result of an L-BFGS run.
#[derive(Debug, Clone)]
pub struct LbfgsResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub f: f64,
    /// Gradient at `x`.
    pub grad: Vec<f64>,
    /// Iterations performed.
    pub iterations: usize,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Minimize `f` starting from `x0`.
///
/// `f` returns the objective value and gradient at a point. Returning a
/// non-finite value signals an infeasible point.
pub fn lbfgs(
    x0: &[f64],
    mut f: impl FnMut(&[f64]) -> (f64, Vec<f64>),
    opts: &LbfgsOptions,
) -> LbfgsResult {
    let mut x = x0.to_vec();
    let (mut fx, mut gx) = f(&x);
    if !fx.is_finite() {
        return LbfgsResult {
            x,
            f: fx,
            grad: gx,
            iterations: 0,
            stop: StopReason::BadStart,
        };
    }

    // Curvature-pair history (s_k, y_k, rho_k).
    let mut s_hist: Vec<Vec<f64>> = Vec::with_capacity(opts.history);
    let mut y_hist: Vec<Vec<f64>> = Vec::with_capacity(opts.history);
    let mut rho_hist: Vec<f64> = Vec::with_capacity(opts.history);

    let mut iterations = 0;
    let mut stop = StopReason::MaxIterations;
    // Require several consecutive tiny decreases before declaring a stall:
    // valley-shaped objectives (Rosenbrock-like LML surfaces) make slow but
    // real progress for many iterations.
    let mut stall_count = 0usize;

    for iter in 0..opts.max_iter {
        iterations = iter + 1;
        let gnorm = gx.iter().fold(0.0f64, |a, &g| a.max(g.abs()));
        if gnorm < opts.grad_tol {
            stop = StopReason::GradientSmall;
            break;
        }

        // Two-loop recursion to get the search direction d = -H g.
        let mut q = gx.clone();
        let k = s_hist.len();
        let mut alpha = vec![0.0; k];
        for i in (0..k).rev() {
            alpha[i] = rho_hist[i] * dot(&s_hist[i], &q);
            for (qj, yj) in q.iter_mut().zip(&y_hist[i]) {
                *qj -= alpha[i] * yj;
            }
        }
        // Initial Hessian scaling gamma = s^T y / y^T y of the latest pair.
        let gamma = if k > 0 {
            let sy = dot(&s_hist[k - 1], &y_hist[k - 1]);
            let yy = dot(&y_hist[k - 1], &y_hist[k - 1]);
            if yy > 0.0 {
                sy / yy
            } else {
                1.0
            }
        } else {
            1.0
        };
        for qj in q.iter_mut() {
            *qj *= gamma;
        }
        for i in 0..k {
            let beta = rho_hist[i] * dot(&y_hist[i], &q);
            for (qj, sj) in q.iter_mut().zip(&s_hist[i]) {
                *qj += (alpha[i] - beta) * sj;
            }
        }
        let mut d: Vec<f64> = q.iter().map(|v| -v).collect();

        // Guard: if the direction is not a descent direction (can happen
        // with a stale history), fall back to steepest descent.
        let mut dg = dot(&d, &gx);
        if dg >= 0.0 {
            d = gx.iter().map(|v| -v).collect();
            dg = -dot(&gx, &gx);
            s_hist.clear();
            y_hist.clear();
            rho_hist.clear();
        }

        // Strong-Wolfe line search (bracket + zoom, Nocedal & Wright
        // Alg. 3.5/3.6). The curvature condition is what guarantees the
        // new (s, y) pair has s·y > 0 and carries real curvature
        // information — an Armijo-only search freezes the Hessian
        // approximation on valley-shaped objectives.
        let Some((x_new, f_new, g_new)) = wolfe_search(&x, fx, dg, &d, &mut f, opts.max_ls_steps)
        else {
            // Surface the failure instead of swallowing it: callers treat a
            // line-search abort as a normal (weaker) convergence outcome, but
            // a high rate signals ill-conditioned likelihood surfaces.
            obs::count(obs::names::CTR_LINESEARCH_FAILURES, 1);
            obs::record_with(|| obs::Event::LineSearch {
                iteration: iterations as u64,
            });
            stop = StopReason::LineSearchFailed;
            break;
        };

        // Update history with the new curvature pair.
        let s: Vec<f64> = x_new.iter().zip(&x).map(|(a, b)| a - b).collect();
        let y: Vec<f64> = g_new.iter().zip(&gx).map(|(a, b)| a - b).collect();
        let sy = dot(&s, &y);
        if sy > 1e-12 * norm(&s) * norm(&y) {
            if s_hist.len() == opts.history {
                s_hist.remove(0);
                y_hist.remove(0);
                rho_hist.remove(0);
            }
            rho_hist.push(1.0 / sy);
            s_hist.push(s);
            y_hist.push(y);
        }

        let rel_dec = (fx - f_new) / fx.abs().max(1.0);
        x = x_new.clone();
        fx = f_new;
        gx = g_new;
        if rel_dec >= 0.0 && rel_dec < opts.f_tol {
            stall_count += 1;
            if stall_count >= 5 {
                stop = StopReason::ObjectiveStalled;
                break;
            }
        } else {
            stall_count = 0;
        }
    }

    LbfgsResult {
        x,
        f: fx,
        grad: gx,
        iterations,
        stop,
    }
}

/// Strong-Wolfe line search along direction `d` from `x` (f0 = f(x),
/// dg0 = d·∇f(x) < 0). Returns the accepted `(x_new, f_new, g_new)`, or
/// `None` if no acceptable step exists within the evaluation budget.
fn wolfe_search(
    x: &[f64],
    f0: f64,
    dg0: f64,
    d: &[f64],
    f: &mut impl FnMut(&[f64]) -> (f64, Vec<f64>),
    max_steps: usize,
) -> Option<(Vec<f64>, f64, Vec<f64>)> {
    const C1: f64 = 1e-4;
    const C2: f64 = 0.9;
    type ValueGradFn<'a> = dyn FnMut(&[f64]) -> (f64, Vec<f64>) + 'a;
    let probe = |t: f64, f: &mut ValueGradFn<'_>| {
        let xt: Vec<f64> = x.iter().zip(d).map(|(xi, di)| xi + t * di).collect();
        let (ft, gt) = f(&xt);
        let dgt = dot(&gt, d);
        (xt, ft, gt, dgt)
    };

    let mut t_prev = 0.0;
    let mut f_prev = f0;
    let mut t = 1.0;
    let mut bracket: Option<(f64, f64)> = None; // (lo, hi) with lo satisfying Armijo
    let mut f_lo = f0;
    let mut best: Option<(Vec<f64>, f64, Vec<f64>)> = None;

    for i in 0..max_steps {
        let (xt, ft, gt, dgt) = probe(t, f);
        let armijo_fail = !ft.is_finite() || ft > f0 + C1 * t * dg0 || (i > 0 && ft >= f_prev);
        if armijo_fail {
            bracket = Some((t_prev, t));
            f_lo = f_prev;
            break;
        }
        if dgt.abs() <= -C2 * dg0 {
            return Some((xt, ft, gt)); // both Wolfe conditions hold
        }
        best = Some((xt, ft, gt)); // Armijo holds: usable fallback
        if dgt >= 0.0 {
            bracket = Some((t, t_prev));
            f_lo = ft;
            break;
        }
        t_prev = t;
        f_prev = ft;
        t *= 2.0;
    }

    let (mut lo, mut hi) = bracket?;
    // Zoom by bisection.
    for _ in 0..max_steps {
        let tm = 0.5 * (lo + hi);
        let (xt, ft, gt, dgt) = probe(tm, f);
        if !ft.is_finite() || ft > f0 + C1 * tm * dg0 || ft >= f_lo {
            hi = tm;
        } else {
            if dgt.abs() <= -C2 * dg0 {
                return Some((xt, ft, gt));
            }
            best = Some((xt.clone(), ft, gt.clone()));
            if dgt * (hi - lo) >= 0.0 {
                hi = lo;
            }
            lo = tm;
            f_lo = ft;
        }
        if (hi - lo).abs() < 1e-16 {
            break;
        }
    }
    // Accept the best Armijo point even if curvature never got satisfied.
    best
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[inline]
fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_bowl() {
        // f(x) = sum (x_i - i)^2 has minimum at x_i = i.
        let f = |x: &[f64]| {
            let mut v = 0.0;
            let mut g = vec![0.0; x.len()];
            for (i, &xi) in x.iter().enumerate() {
                let d = xi - i as f64;
                v += d * d;
                g[i] = 2.0 * d;
            }
            (v, g)
        };
        let res = lbfgs(&[5.0; 4], f, &LbfgsOptions::default());
        for (i, xi) in res.x.iter().enumerate() {
            assert!((xi - i as f64).abs() < 1e-5, "x[{i}] = {xi}");
        }
        assert!(res.f < 1e-9);
    }

    #[test]
    fn rosenbrock_2d() {
        let f = |x: &[f64]| {
            let (a, b) = (1.0, 100.0);
            let v = (a - x[0]).powi(2) + b * (x[1] - x[0] * x[0]).powi(2);
            let g = vec![
                -2.0 * (a - x[0]) - 4.0 * b * x[0] * (x[1] - x[0] * x[0]),
                2.0 * b * (x[1] - x[0] * x[0]),
            ];
            (v, g)
        };
        let opts = LbfgsOptions {
            max_iter: 500,
            ..Default::default()
        };
        let res = lbfgs(&[-1.2, 1.0], f, &opts);
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x = {:?}", res.x);
        assert!((res.x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn infeasible_region_respected() {
        // Objective infinite for x < 0.5: minimum of (x-0)^2 clipped at 0.5.
        let f = |x: &[f64]| {
            if x[0] < 0.5 {
                (f64::INFINITY, vec![0.0])
            } else {
                (x[0] * x[0], vec![2.0 * x[0]])
            }
        };
        let res = lbfgs(&[2.0], f, &LbfgsOptions::default());
        assert!(res.x[0] >= 0.5);
        assert!(
            res.x[0] < 0.75,
            "should approach the boundary, got {}",
            res.x[0]
        );
    }

    #[test]
    fn bad_start_reported() {
        let f = |_: &[f64]| (f64::NAN, vec![0.0]);
        let res = lbfgs(&[0.0], f, &LbfgsOptions::default());
        assert_eq!(res.stop, StopReason::BadStart);
    }

    #[test]
    fn already_at_minimum_stops_fast() {
        let f = |x: &[f64]| (x[0] * x[0], vec![2.0 * x[0]]);
        let res = lbfgs(&[0.0], f, &LbfgsOptions::default());
        assert_eq!(res.stop, StopReason::GradientSmall);
        assert!(res.iterations <= 1);
    }

    #[test]
    fn monotone_nonincreasing_objective() {
        // Track every accepted objective value; they must never increase.
        use std::cell::RefCell;
        let best = RefCell::new(f64::INFINITY);
        let f = |x: &[f64]| {
            let v = (x[0] - 3.0).powi(2) + 0.5 * (x[1] + 1.0).powi(4);
            let g = vec![2.0 * (x[0] - 3.0), 2.0 * (x[1] + 1.0).powi(3)];
            (v, g)
        };
        let res = lbfgs(&[10.0, 10.0], f, &LbfgsOptions::default());
        let mut b = best.borrow_mut();
        *b = res.f;
        assert!(res.f < 1e-4);
        assert!((res.x[0] - 3.0).abs() < 1e-2);
    }
}
