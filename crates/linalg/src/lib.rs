//! # crowdtune-linalg
//!
//! Dense linear algebra and small-scale optimization substrate for the
//! crowdtune autotuner. Everything here is hand-rolled: the Rust GP/BO
//! ecosystem is thin, and the paper's modelling stack (Gaussian processes,
//! the LCM multitask model, dynamic weight regression, Sobol bootstrap
//! statistics) needs exactly these pieces:
//!
//! - [`matrix::Matrix`] — dense row-major `f64` matrices with the BLAS-like
//!   kernels GP regression needs.
//! - [`cholesky::Cholesky`] — SPD factorization with automatic jitter
//!   escalation (the standard GP numerical hygiene).
//! - [`qr::Qr`] / [`qr::lstsq`] — Householder least squares for the
//!   `WeightedSum(dynamic)` weight regression.
//! - [`nnls::nnls`] — Lawson–Hanson non-negative least squares, keeping
//!   dynamic task weights additive.
//! - [`lbfgs::lbfgs`] — L-BFGS for maximizing GP log marginal likelihoods.
//! - [`neldermead::nelder_mead`] — gradient-free fallback optimizer.
//! - [`stats`] — moments, normal pdf/cdf (Expected Improvement), bootstrap
//!   confidence intervals (Sobol indices).

#![warn(missing_docs)]

pub mod cholesky;
pub mod lbfgs;
pub mod matrix;
pub mod neldermead;
pub mod nnls;
pub mod qr;
pub mod stats;

pub use cholesky::{Cholesky, NotPositiveDefinite};
pub use lbfgs::{lbfgs, LbfgsOptions, LbfgsResult, StopReason};
pub use matrix::{axpy, dot, norm2, norm2_sq, Matrix};
pub use neldermead::{nelder_mead, NelderMeadOptions, NelderMeadResult};
pub use nnls::{nnls, nnls_with, NnlsOptions};
pub use qr::{lstsq, ridge, Qr, QrError};
