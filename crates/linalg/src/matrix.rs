//! Dense, row-major matrices and the small set of BLAS-like kernels the
//! Gaussian-process stack needs.
//!
//! The matrices involved in crowd-tuning are moderate (a few hundred to a
//! couple of thousand rows: one row per collected performance sample), so a
//! straightforward cache-friendly row-major layout with blocked matmul is
//! both simple and fast enough. All storage is `f64`.

use rayon::prelude::*;
use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

/// Minimum number of fused multiply-adds before a kernel goes parallel.
///
/// Below this, thread spawn/join overhead (a few µs per region with the
/// scoped-thread pool) swamps any speedup. The cutoff keeps small-n
/// callers — the vast majority of GP updates early in a tuning run —
/// on the exact serial code path.
pub(crate) const PAR_MIN_FLOPS: usize = 1 << 17;

/// Split `n` items into at most `pieces` contiguous, near-equal ranges.
pub(crate) fn row_chunks(n: usize, pieces: usize) -> Vec<std::ops::Range<usize>> {
    let pieces = pieces.clamp(1, n.max(1));
    let base = n / pieces;
    let extra = n % pieces;
    let mut out = Vec::with_capacity(pieces);
    let mut start = 0;
    for p in 0..pieces {
        let len = base + usize::from(p < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// A dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>12.5e}", self[(r, c)])?;
                if c + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wrap an already row-major buffer without copying.
    pub(crate) fn from_raw(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        debug_assert_eq!(data.len(), rows * cols);
        Matrix { rows, cols, data }
    }

    /// Create a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices (convenient in tests).
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = if r == 0 { 0 } else { rows[0].len() };
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build a matrix by evaluating `f(row, col)` at every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// A column vector (n x 1) from a slice.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// True when the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow the raw row-major data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrow the raw row-major data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * rhs`.
    ///
    /// Large products are computed row-parallel; every output row is
    /// produced by exactly the same instruction sequence as
    /// [`Matrix::matmul_serial`], so the result is bitwise identical
    /// for any thread count.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let flops = self.rows * self.cols * rhs.cols;
        let threads = rayon::current_num_threads();
        if flops < PAR_MIN_FLOPS || threads <= 1 || self.rows < 2 {
            return self.matmul_serial(rhs);
        }
        let blocks: Vec<Vec<f64>> = row_chunks(self.rows, threads)
            .into_par_iter()
            .map(|range| self.matmul_rows(rhs, range))
            .collect();
        let data: Vec<f64> = blocks.into_iter().flatten().collect();
        Matrix {
            rows: self.rows,
            cols: rhs.cols,
            data,
        }
    }

    /// Serial reference matmul (simple ikj loop order that keeps the
    /// inner loop streaming over contiguous rows). Public so benches and
    /// determinism tests can compare against the parallel path.
    pub fn matmul_serial(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let data = self.matmul_rows(rhs, 0..self.rows);
        Matrix {
            rows: self.rows,
            cols: rhs.cols,
            data,
        }
    }

    /// Rows `range` of `self * rhs` as a row-major buffer.
    fn matmul_rows(&self, rhs: &Matrix, range: std::ops::Range<usize>) -> Vec<f64> {
        let mut out = vec![0.0; range.len() * rhs.cols];
        for (oi, i) in range.enumerate() {
            let a_row = self.row(i);
            let o_row = &mut out[oi * rhs.cols..(oi + 1) * rhs.cols];
            for (k, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = rhs.row(k);
                for (o, &b) in o_row.iter_mut().zip(b_row.iter()) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * v`, row-parallel above the flop
    /// cutoff (each entry is an independent dot product, so the result
    /// is thread-count invariant).
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let threads = rayon::current_num_threads();
        if self.rows * self.cols < PAR_MIN_FLOPS || threads <= 1 || self.rows < 2 {
            return self.matvec_serial(v);
        }
        let blocks: Vec<Vec<f64>> = row_chunks(self.rows, threads)
            .into_par_iter()
            .map(|range| range.map(|i| dot(self.row(i), v)).collect::<Vec<f64>>())
            .collect();
        blocks.into_iter().flatten().collect()
    }

    /// Serial reference matvec.
    pub fn matvec_serial(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, o) in out.iter_mut().enumerate() {
            *o = dot(self.row(i), v);
        }
        out
    }

    /// Transposed matrix-vector product `self^T * v`, column-parallel
    /// above the flop cutoff. Every output entry accumulates over rows
    /// in ascending order with the same zero-skip as the serial sweep,
    /// so results are thread-count invariant.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "tr_matvec dimension mismatch");
        let threads = rayon::current_num_threads();
        if self.rows * self.cols < PAR_MIN_FLOPS || threads <= 1 || self.cols < 2 {
            return self.tr_matvec_serial(v);
        }
        let blocks: Vec<Vec<f64>> = row_chunks(self.cols, threads)
            .into_par_iter()
            .map(|range| {
                let mut out = vec![0.0; range.len()];
                for (i, &vi) in v.iter().enumerate() {
                    if vi == 0.0 {
                        continue;
                    }
                    let row = &self.row(i)[range.clone()];
                    for (o, &a) in out.iter_mut().zip(row.iter()) {
                        *o += vi * a;
                    }
                }
                out
            })
            .collect();
        blocks.into_iter().flatten().collect()
    }

    /// Serial reference transposed matvec.
    pub fn tr_matvec_serial(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "tr_matvec dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (i, &vi) in v.iter().enumerate() {
            if vi == 0.0 {
                continue;
            }
            for (o, &a) in out.iter_mut().zip(self.row(i).iter()) {
                *o += vi * a;
            }
        }
        out
    }

    /// `self^T * self`, the Gram matrix, computed exploiting symmetry.
    ///
    /// Large grams are parallel over output rows; each output row `i`
    /// accumulates over data rows in the same ascending order as the
    /// serial sweep, so the result is thread-count invariant.
    pub fn gram(&self) -> Matrix {
        let n = self.cols;
        let threads = rayon::current_num_threads();
        // Work is ~rows * n^2 / 2.
        if self.rows * n * n / 2 < PAR_MIN_FLOPS || threads <= 1 || n < 2 {
            return self.gram_serial();
        }
        let blocks: Vec<Vec<f64>> = row_chunks(n, threads * 4)
            .into_par_iter()
            .map(|range| {
                // Upper-triangular part of rows `range` of the gram.
                let mut out = vec![0.0; range.len() * n];
                for r in 0..self.rows {
                    let row = self.row(r);
                    for (oi, i) in range.clone().enumerate() {
                        let ri = row[i];
                        if ri == 0.0 {
                            continue;
                        }
                        let o_row = &mut out[oi * n..(oi + 1) * n];
                        for j in i..n {
                            o_row[j] += ri * row[j];
                        }
                    }
                }
                out
            })
            .collect();
        let data: Vec<f64> = blocks.into_iter().flatten().collect();
        let mut g = Matrix {
            rows: n,
            cols: n,
            data,
        };
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Serial reference gram.
    pub fn gram_serial(&self) -> Matrix {
        let n = self.cols;
        let mut g = Matrix::zeros(n, n);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..n {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                for j in i..n {
                    g[(i, j)] += ri * row[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                g[(i, j)] = g[(j, i)];
            }
        }
        g
    }

    /// Scale every entry in place.
    pub fn scale_mut(&mut self, s: f64) {
        for x in &mut self.data {
            *x *= s;
        }
    }

    /// `self += s * other`, the matrix AXPY.
    pub fn axpy_mut(&mut self, s: f64, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += s * b;
        }
    }

    /// Sum of the diagonal entries.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace of a non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm.
    pub fn fro_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference to `other`.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Extract the square submatrix of the listed row/col indices (used to
    /// form per-task blocks of multitask covariance matrices).
    pub fn select(&self, row_idx: &[usize], col_idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(row_idx.len(), col_idx.len());
        for (oi, &ri) in row_idx.iter().enumerate() {
            for (oj, &ci) in col_idx.iter().enumerate() {
                out[(oi, oj)] = self[(ri, ci)];
            }
        }
        out
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    /// Symmetrize in place: `self = (self + self^T) / 2`.
    pub fn symmetrize_mut(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let v = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = v;
                self[(j, i)] = v;
            }
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add<&Matrix> for &Matrix {
    type Output = Matrix;
    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub<&Matrix> for &Matrix {
    type Output = Matrix;
    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;
    fn mul(self, s: f64) -> Matrix {
        let data = self.data.iter().map(|a| a * s).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

/// Dot product of two slices.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    // Four-way unrolled accumulation: helps the optimizer vectorize and
    // reduces the sequential dependency chain of the additions.
    let chunks = a.len() / 4 * 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i < chunks {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < a.len() {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3) + tail
}

/// Squared Euclidean norm.
#[inline]
pub fn norm2_sq(a: &[f64]) -> f64 {
    dot(a, a)
}

/// Euclidean norm.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    norm2_sq(a).sqrt()
}

/// `y += alpha * x` on slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i.trace(), 3.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert_eq!(i[(2, 2)], 1.0);
    }

    #[test]
    fn from_rows_and_index() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_bad_len_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[3.0, 4.0, -1.0]]);
        let c = a.matmul(&Matrix::identity(3));
        assert_eq!(c, a);
    }

    #[test]
    fn matvec_and_transposed() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn gram_matches_explicit() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let g = a.gram();
        let expect = a.transpose().matmul(&a);
        assert!(g.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
    }

    #[test]
    fn dot_unrolled_matches_naive() {
        let a: Vec<f64> = (0..13).map(|i| i as f64 * 0.7 - 3.0).collect();
        let b: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - naive).abs() < 1e-12);
    }

    #[test]
    fn select_submatrix() {
        let m = Matrix::from_fn(4, 4, |r, c| (r * 4 + c) as f64);
        let s = m.select(&[0, 2], &[1, 3]);
        assert_eq!(s, Matrix::from_rows(&[&[1.0, 3.0], &[9.0, 11.0]]));
    }

    #[test]
    fn symmetrize() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[4.0, 3.0]]);
        m.symmetrize_mut();
        assert_eq!(m[(0, 1)], 3.0);
        assert_eq!(m[(1, 0)], 3.0);
    }

    #[test]
    fn axpy_mut_and_trace() {
        let mut a = Matrix::identity(2);
        let b = Matrix::filled(2, 2, 1.0);
        a.axpy_mut(2.0, &b);
        assert_eq!(a.trace(), 6.0);
        assert_eq!(a[(0, 1)], 2.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Matrix::zeros(2, 2);
        assert!(!a.has_non_finite());
        a[(1, 1)] = f64::NAN;
        assert!(a.has_non_finite());
    }
}
