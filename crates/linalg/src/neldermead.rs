//! Nelder–Mead downhill simplex minimization.
//!
//! Gradient-free fallback used (a) when a kernel's hyperparameter gradient
//! is unavailable (the categorical Hamming kernel's rounding makes its
//! finite-difference gradient unreliable) and (b) to polish acquisition
//! maxima inside the unit cube. Standard reflection/expansion/contraction/
//! shrink coefficients (1, 2, 0.5, 0.5) with the adaptive restart used in
//! scipy: the simplex re-expands around the incumbent when it collapses.

/// Options for [`nelder_mead`].
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum objective evaluations.
    pub max_evals: usize,
    /// Stop when the simplex's objective spread falls below this.
    pub f_tol: f64,
    /// Stop when the simplex's coordinate spread falls below this.
    pub x_tol: f64,
    /// Initial simplex edge length.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_evals: 400,
            f_tol: 1e-10,
            x_tol: 1e-8,
            initial_step: 0.1,
        }
    }
}

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NelderMeadResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective at `x`.
    pub f: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Minimize `f` from `x0`. Non-finite objective values are treated as
/// `+inf` (worst), so hard constraints can be expressed by returning NaN
/// or infinity.
pub fn nelder_mead(
    x0: &[f64],
    mut f: impl FnMut(&[f64]) -> f64,
    opts: &NelderMeadOptions,
) -> NelderMeadResult {
    let n = x0.len();
    assert!(n > 0, "empty parameter vector");
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_finite() {
            v
        } else {
            f64::INFINITY
        }
    };

    // Initial simplex: x0 plus a step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(n + 1);
    let f0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), f0));
    for i in 0..n {
        let mut p = x0.to_vec();
        let step = if p[i] != 0.0 {
            opts.initial_step * p[i].abs()
        } else {
            opts.initial_step
        };
        p[i] += step;
        let fp = eval(&p, &mut evals);
        simplex.push((p, fp));
    }

    let (alpha, gamma, rho, sigma) = (1.0, 2.0, 0.5, 0.5);

    while evals < opts.max_evals {
        simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        let f_best = simplex[0].1;
        let f_worst = simplex[n].1;
        // Convergence: objective spread and coordinate spread.
        let f_spread = (f_worst - f_best).abs();
        let x_spread = (0..n)
            .map(|d| {
                let lo = simplex
                    .iter()
                    .map(|(p, _)| p[d])
                    .fold(f64::INFINITY, f64::min);
                let hi = simplex
                    .iter()
                    .map(|(p, _)| p[d])
                    .fold(f64::NEG_INFINITY, f64::max);
                hi - lo
            })
            .fold(0.0f64, f64::max);
        if f_spread < opts.f_tol && x_spread < opts.x_tol {
            break;
        }

        // Centroid of all but the worst point.
        let mut centroid = vec![0.0; n];
        for (p, _) in &simplex[..n] {
            for (c, &v) in centroid.iter_mut().zip(p.iter()) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= n as f64;
        }

        let worst = simplex[n].clone();
        let reflect: Vec<f64> = centroid
            .iter()
            .zip(&worst.0)
            .map(|(c, w)| c + alpha * (c - w))
            .collect();
        let f_reflect = eval(&reflect, &mut evals);

        if f_reflect < simplex[0].1 {
            // Try expanding further.
            let expand: Vec<f64> = centroid
                .iter()
                .zip(&reflect)
                .map(|(c, r)| c + gamma * (r - c))
                .collect();
            let f_expand = eval(&expand, &mut evals);
            simplex[n] = if f_expand < f_reflect {
                (expand, f_expand)
            } else {
                (reflect, f_reflect)
            };
        } else if f_reflect < simplex[n - 1].1 {
            simplex[n] = (reflect, f_reflect);
        } else {
            // Contract towards the centroid.
            let contract: Vec<f64> = centroid
                .iter()
                .zip(&worst.0)
                .map(|(c, w)| c + rho * (w - c))
                .collect();
            let f_contract = eval(&contract, &mut evals);
            if f_contract < worst.1 {
                simplex[n] = (contract, f_contract);
            } else {
                // Shrink everything towards the best vertex.
                let best = simplex[0].0.clone();
                for (p, fv) in simplex.iter_mut().skip(1) {
                    for (pi, &bi) in p.iter_mut().zip(best.iter()) {
                        *pi = bi + sigma * (*pi - bi);
                    }
                    *fv = eval(p, &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let (x, fv) = simplex.swap_remove(0);
    NelderMeadResult { x, f: fv, evals }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_function() {
        let res = nelder_mead(
            &[3.0, -2.0, 1.0],
            |x| x.iter().map(|v| v * v).sum(),
            &NelderMeadOptions {
                max_evals: 2000,
                ..Default::default()
            },
        );
        assert!(res.f < 1e-6, "f = {}", res.f);
        for xi in &res.x {
            assert!(xi.abs() < 1e-3);
        }
    }

    #[test]
    fn shifted_quadratic() {
        let res = nelder_mead(
            &[0.0, 0.0],
            |x| (x[0] - 1.5).powi(2) + 4.0 * (x[1] + 2.0).powi(2),
            &NelderMeadOptions {
                max_evals: 2000,
                ..Default::default()
            },
        );
        assert!((res.x[0] - 1.5).abs() < 1e-3);
        assert!((res.x[1] + 2.0).abs() < 1e-3);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0;
        let _ = nelder_mead(
            &[1.0, 1.0],
            |x| {
                count += 1;
                x[0] * x[0] + x[1] * x[1]
            },
            &NelderMeadOptions {
                max_evals: 50,
                ..Default::default()
            },
        );
        // The shrink step can slightly overshoot the budget within one sweep.
        assert!(count <= 50 + 2, "count = {count}");
    }

    #[test]
    fn nan_objective_treated_as_infeasible() {
        // NaN outside |x| <= 2; minimum at 1.
        let res = nelder_mead(
            &[1.8],
            |x| {
                if x[0].abs() > 2.0 {
                    f64::NAN
                } else {
                    (x[0] - 1.0).powi(2)
                }
            },
            &NelderMeadOptions {
                max_evals: 500,
                ..Default::default()
            },
        );
        assert!((res.x[0] - 1.0).abs() < 1e-3, "x = {:?}", res.x);
    }

    #[test]
    fn zero_start_uses_absolute_step() {
        let res = nelder_mead(
            &[0.0],
            |x| (x[0] - 0.5).powi(2),
            &NelderMeadOptions {
                max_evals: 300,
                ..Default::default()
            },
        );
        assert!((res.x[0] - 0.5).abs() < 1e-4);
    }
}
