//! Non-negative least squares (Lawson–Hanson active set method).
//!
//! `WeightedSum(dynamic)` fits per-task weights by regressing observed
//! improvement gaps onto predicted gaps (paper §V-C). Unconstrained least
//! squares can return negative task weights, which flip the sign of a
//! source surrogate's contribution and destabilize the acquisition
//! function; solving the regression under `w >= 0` keeps every surrogate's
//! influence additive. This is the classic Lawson–Hanson algorithm
//! (*Solving Least Squares Problems*, 1974, Ch. 23).

use crate::matrix::Matrix;
use crate::qr::lstsq;

/// Options for the NNLS solver.
#[derive(Debug, Clone)]
pub struct NnlsOptions {
    /// Maximum outer iterations; the default `3 * n` matches common practice.
    pub max_iter: usize,
    /// Tolerance on the dual vector for declaring optimality.
    pub tol: f64,
}

impl Default for NnlsOptions {
    fn default() -> Self {
        NnlsOptions {
            max_iter: 0,
            tol: 1e-10,
        }
    }
}

/// Solve `min ||A x - b||_2 subject to x >= 0`.
///
/// Returns the solution vector; always well-defined (falls back to the zero
/// vector when no positive coordinate improves the fit).
pub fn nnls(a: &Matrix, b: &[f64]) -> Vec<f64> {
    nnls_with(a, b, &NnlsOptions::default())
}

/// [`nnls`] with explicit options.
pub fn nnls_with(a: &Matrix, b: &[f64], opts: &NnlsOptions) -> Vec<f64> {
    let (m, n) = (a.rows(), a.cols());
    assert_eq!(b.len(), m, "rhs length mismatch");
    let max_iter = if opts.max_iter == 0 {
        3 * n.max(1) * 10
    } else {
        opts.max_iter
    };

    let mut x = vec![0.0; n];
    let mut passive: Vec<bool> = vec![false; n];
    // Residual r = b - A x (x = 0 initially).
    let mut residual: Vec<f64> = b.to_vec();

    for _ in 0..max_iter {
        // Dual vector w = A^T r, restricted to the active (zero) set.
        let w = a.tr_matvec(&residual);
        let mut best = None;
        for j in 0..n {
            if !passive[j] && w[j] > opts.tol {
                match best {
                    Some((_, wv)) if wv >= w[j] => {}
                    _ => best = Some((j, w[j])),
                }
            }
        }
        let Some((j_enter, _)) = best else {
            break; // KKT conditions satisfied.
        };
        passive[j_enter] = true;

        // Inner loop: solve the unconstrained subproblem on the passive set,
        // clipping back any coordinates that would go negative.
        loop {
            let pset: Vec<usize> = (0..n).filter(|&j| passive[j]).collect();
            let sub = submatrix_cols(a, &pset);
            let z = lstsq(&sub, b);
            if z.iter().all(|&v| v > 0.0) {
                for (k, &j) in pset.iter().enumerate() {
                    x[j] = z[k];
                }
                break;
            }
            // Step from x towards z, stopping at the first boundary.
            let mut alpha = f64::INFINITY;
            for (k, &j) in pset.iter().enumerate() {
                if z[k] <= 0.0 {
                    let step = x[j] / (x[j] - z[k]);
                    if step < alpha {
                        alpha = step;
                    }
                }
            }
            if !alpha.is_finite() {
                alpha = 0.0;
            }
            for (k, &j) in pset.iter().enumerate() {
                x[j] += alpha * (z[k] - x[j]);
                if x[j] <= opts.tol {
                    x[j] = 0.0;
                    passive[j] = false;
                }
            }
            if pset.iter().all(|&j| !passive[j]) {
                // Everything got clipped; the entering variable cannot help.
                break;
            }
        }

        // Refresh the residual.
        let ax = a.matvec(&x);
        for i in 0..m {
            residual[i] = b[i] - ax[i];
        }
    }
    x
}

fn submatrix_cols(a: &Matrix, cols: &[usize]) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), cols.len());
    for r in 0..a.rows() {
        for (k, &c) in cols.iter().enumerate() {
            out[(r, k)] = a[(r, c)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_optimum_already_nonnegative() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = [1.0, 2.0, 3.0];
        let x = nnls(&a, &b);
        // Unconstrained solution is exactly (1, 2): consistent system.
        assert!((x[0] - 1.0).abs() < 1e-8);
        assert!((x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn negative_coordinate_clamped_to_zero() {
        // min ||x1 - (-1)||^2 + ||x2 - 1||^2 s.t. x >= 0 => x = (0, 1).
        let a = Matrix::identity(2);
        let b = [-1.0, 1.0];
        let x = nnls(&a, &b);
        assert_eq!(x[0], 0.0);
        assert!((x[1] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn all_negative_target_gives_zero_vector() {
        let a = Matrix::identity(3);
        let b = [-1.0, -5.0, -0.1];
        let x = nnls(&a, &b);
        assert_eq!(x, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn solution_satisfies_kkt() {
        let a = Matrix::from_rows(&[
            &[0.5, 2.0, 1.0],
            &[2.0, 0.5, 1.0],
            &[1.0, 1.0, 2.0],
            &[0.1, 0.7, 0.3],
        ]);
        let b = [1.0, 2.0, -0.5, 0.3];
        let x = nnls(&a, &b);
        // KKT: x >= 0, and gradient g = A^T(Ax - b) satisfies
        // g_j >= 0 for x_j = 0 and g_j ~= 0 for x_j > 0.
        let ax = a.matvec(&x);
        let r: Vec<f64> = ax.iter().zip(b.iter()).map(|(axi, bi)| axi - bi).collect();
        let g = a.tr_matvec(&r);
        for j in 0..3 {
            assert!(x[j] >= 0.0);
            if x[j] > 1e-10 {
                assert!(g[j].abs() < 1e-6, "interior gradient not ~0: {}", g[j]);
            } else {
                assert!(g[j] > -1e-6, "active gradient negative: {}", g[j]);
            }
        }
    }

    #[test]
    fn never_worse_than_zero_vector() {
        let a = Matrix::from_rows(&[&[1.0, -1.0], &[-2.0, 1.0], &[0.5, 0.5]]);
        let b = [1.0, -1.0, 0.25];
        let x = nnls(&a, &b);
        let ax = a.matvec(&x);
        let res: f64 = ax
            .iter()
            .zip(b.iter())
            .map(|(p, q)| (p - q) * (p - q))
            .sum();
        let zero_res: f64 = b.iter().map(|q| q * q).sum();
        assert!(res <= zero_res + 1e-12);
    }
}
