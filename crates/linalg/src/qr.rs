//! Householder QR factorization and linear least squares.
//!
//! Used by the `WeightedSum(dynamic)` TLA algorithm, whose per-iteration
//! weight fit is a small dense least-squares problem, and as the
//! well-conditioned backend for unconstrained regression throughout the
//! tuner. QR (rather than normal equations) keeps the fit stable when the
//! regressors — differences of GP posterior means — are nearly collinear.

use crate::matrix::Matrix;

/// Compact Householder QR factorization of an `m x n` matrix with `m >= n`.
///
/// `R` is stored in the upper triangle of `qr`; the Householder vectors
/// (with implicit unit leading entry) in the lower triangle plus `beta`.
#[derive(Debug, Clone)]
pub struct Qr {
    qr: Matrix,
    beta: Vec<f64>,
}

/// Error for rank-deficient or mis-shaped least squares problems.
#[derive(Debug, Clone, PartialEq)]
pub enum QrError {
    /// More columns than rows: the system is underdetermined.
    Underdetermined {
        /// Row count of the offending matrix.
        rows: usize,
        /// Column count of the offending matrix.
        cols: usize,
    },
    /// `R` had a (near-)zero diagonal entry: columns are linearly dependent.
    RankDeficient {
        /// Column index at which rank deficiency was detected.
        column: usize,
    },
}

impl std::fmt::Display for QrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QrError::Underdetermined { rows, cols } => {
                write!(f, "QR least squares needs rows >= cols, got {rows}x{cols}")
            }
            QrError::RankDeficient { column } => {
                write!(f, "matrix is rank deficient at column {column}")
            }
        }
    }
}

impl std::error::Error for QrError {}

impl Qr {
    /// Factorize `a` (consumed) with Householder reflections.
    pub fn new(a: Matrix) -> Result<Self, QrError> {
        let (m, n) = (a.rows(), a.cols());
        if m < n {
            return Err(QrError::Underdetermined { rows: m, cols: n });
        }
        let mut qr = a;
        let mut beta = vec![0.0; n];
        for k in 0..n {
            // Build the Householder vector for column k below the diagonal.
            let mut norm_sq = 0.0;
            for i in k..m {
                norm_sq += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm_sq.sqrt();
            if norm == 0.0 {
                beta[k] = 0.0;
                continue;
            }
            let akk = qr[(k, k)];
            let alpha = if akk >= 0.0 { -norm } else { norm };
            let v0 = akk - alpha;
            // v = [v0, a[k+1..m, k]]; normalize so v[0] = 1.
            let v_norm_sq = v0 * v0 + (norm_sq - akk * akk);
            if v_norm_sq == 0.0 {
                beta[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            beta[k] = 2.0 * v0 * v0 / v_norm_sq;
            for i in (k + 1)..m {
                qr[(i, k)] /= v0;
            }
            qr[(k, k)] = alpha;
            // Apply the reflector to the trailing columns.
            for j in (k + 1)..n {
                let mut s = qr[(k, j)];
                for i in (k + 1)..m {
                    s += qr[(i, k)] * qr[(i, j)];
                }
                s *= beta[k];
                qr[(k, j)] -= s;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= s * vik;
                }
            }
        }
        Ok(Qr { qr, beta })
    }

    /// Apply `Q^T` to a vector in place.
    fn apply_qt(&self, b: &mut [f64]) {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.len(), m);
        for k in 0..n {
            if self.beta[k] == 0.0 {
                continue;
            }
            let mut s = b[k];
            for (i, &bi) in b.iter().enumerate().take(m).skip(k + 1) {
                s += self.qr[(i, k)] * bi;
            }
            s *= self.beta[k];
            b[k] -= s;
            for (i, bi) in b.iter_mut().enumerate().take(m).skip(k + 1) {
                *bi -= s * self.qr[(i, k)];
            }
        }
    }

    /// Solve the least squares problem `min ||A x - b||_2`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, QrError> {
        let (m, n) = (self.qr.rows(), self.qr.cols());
        assert_eq!(b.len(), m, "rhs length mismatch");
        let mut y = b.to_vec();
        self.apply_qt(&mut y);
        // Back-substitute R x = y[0..n].
        let mut x = vec![0.0; n];
        let scale = self
            .qr
            .as_slice()
            .iter()
            .fold(0.0f64, |a, &v| a.max(v.abs()));
        let tol = 1e-12 * scale.max(1.0);
        for i in (0..n).rev() {
            let mut s = y[i];
            for (q, xj) in self.qr.row(i)[i + 1..].iter().zip(&x[i + 1..]) {
                s -= q * xj;
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= tol {
                return Err(QrError::RankDeficient { column: i });
            }
            x[i] = s / rii;
        }
        Ok(x)
    }
}

/// One-shot least squares `min ||A x - b||`, ridge-regularized fallback.
///
/// When `a` is rank deficient the problem is re-solved as
/// `(A^T A + lambda I) x = A^T b` with a small `lambda`, which is what the
/// dynamic-weight regression wants: a usable (if not unique) weight vector
/// rather than an error.
pub fn lstsq(a: &Matrix, b: &[f64]) -> Vec<f64> {
    if a.rows() >= a.cols() {
        if let Ok(qr) = Qr::new(a.clone()) {
            if let Ok(x) = qr.solve(b) {
                return x;
            }
        }
    }
    ridge(a, b, 1e-8)
}

/// Ridge regression `(A^T A + lambda I) x = A^T b` via Cholesky.
pub fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Vec<f64> {
    let mut g = a.gram();
    let scale = (0..g.rows())
        .map(|i| g[(i, i)])
        .fold(0.0f64, f64::max)
        .max(1.0);
    for i in 0..g.rows() {
        g[(i, i)] += lambda * scale;
    }
    let rhs = a.tr_matvec(b);
    match crate::cholesky::Cholesky::robust(&g) {
        Ok(ch) => ch.solve_vec(&rhs),
        Err(_) => vec![0.0; a.cols()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qr_solves_square_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x_true = [1.0, -2.0];
        let b = a.matvec(&x_true);
        let qr = Qr::new(a).unwrap();
        let x = qr.solve(&b).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] + 2.0).abs() < 1e-12);
    }

    #[test]
    fn qr_least_squares_overdetermined() {
        // Fit y = 2x + 1 through noisy points; exact fit on consistent data.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 1.0], &[2.0, 1.0], &[3.0, 1.0]]);
        let b = [1.0, 3.0, 5.0, 7.0];
        let x = Qr::new(a).unwrap().solve(&b).unwrap();
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn qr_residual_is_orthogonal_to_columns() {
        let a = Matrix::from_rows(&[
            &[1.0, 2.0],
            &[3.0, -1.0],
            &[0.5, 4.0],
            &[-2.0, 1.0],
            &[1.5, 0.0],
        ]);
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        let x = Qr::new(a.clone()).unwrap().solve(&b).unwrap();
        let ax = a.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let atr = a.tr_matvec(&r);
        for v in atr {
            assert!(v.abs() < 1e-10, "residual not orthogonal: {v}");
        }
    }

    #[test]
    fn underdetermined_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0]]);
        assert!(matches!(Qr::new(a), Err(QrError::Underdetermined { .. })));
    }

    #[test]
    fn rank_deficient_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let qr = Qr::new(a).unwrap();
        assert!(matches!(
            qr.solve(&[1.0, 2.0, 3.0]),
            Err(QrError::RankDeficient { .. })
        ));
    }

    #[test]
    fn lstsq_falls_back_on_rank_deficiency() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0], &[3.0, 6.0]]);
        let x = lstsq(&a, &[1.0, 2.0, 3.0]);
        // Any solution with x0 + 2 x1 = 1 fits perfectly; ridge returns the
        // minimum-norm-ish one. Check the fit itself.
        let fit = a.matvec(&x);
        for (f, b) in fit.iter().zip([1.0, 2.0, 3.0]) {
            assert!((f - b).abs() < 1e-3);
        }
    }

    #[test]
    fn ridge_shrinks_towards_zero() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = [1.0, 1.0];
        let x_small = ridge(&a, &b, 1e-12);
        let x_large = ridge(&a, &b, 10.0);
        assert!(x_small[0] > 0.99);
        assert!(x_large[0] < 0.5);
    }
}
