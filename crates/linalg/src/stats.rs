//! Scalar statistics used across the tuner: moments, quantiles, the
//! standard normal pdf/cdf (needed by Expected Improvement), and bootstrap
//! resampling (needed for Sobol-index confidence intervals).

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population variance (divides by n); 0.0 for fewer than 2 elements.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample variance (divides by n-1); 0.0 for fewer than 2 elements.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice, `None` when empty or all-NaN.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| match acc {
            None => Some(x),
            Some(a) => Some(a.min(x)),
        })
}

/// Maximum of a slice, `None` when empty or all-NaN.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter()
        .copied()
        .filter(|x| !x.is_nan())
        .fold(None, |acc, x| match acc {
            None => Some(x),
            Some(a) => Some(a.max(x)),
        })
}

/// Linear-interpolation quantile (the "type 7" estimator R and NumPy use).
/// `q` is clamped to [0, 1]. Returns `None` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(v[lo] * (1.0 - frac) + v[hi] * frac)
}

/// Standard normal probability density.
#[inline]
pub fn normal_pdf(z: f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    INV_SQRT_2PI * (-0.5 * z * z).exp()
}

/// Standard normal cumulative distribution, via `erf`.
#[inline]
pub fn normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// Error function, Abramowitz & Stegun 7.1.26 rational approximation
/// (max absolute error 1.5e-7, ample for acquisition functions).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Percentile bootstrap confidence half-width for the mean of `xs`.
///
/// Draws `n_boot` resamples using the caller-provided index source (a
/// closure returning a uniform index, so the crate stays RNG-free) and
/// returns `z * std(resample means)` — the symmetric normal-approximation
/// half width SALib reports for Sobol indices (`z = 1.96` for 95%).
pub fn bootstrap_ci_half_width(
    xs: &[f64],
    n_boot: usize,
    z: f64,
    mut uniform_index: impl FnMut(usize) -> usize,
) -> f64 {
    if xs.len() < 2 || n_boot == 0 {
        return 0.0;
    }
    let mut means = Vec::with_capacity(n_boot);
    for _ in 0..n_boot {
        let mut s = 0.0;
        for _ in 0..xs.len() {
            s += xs[uniform_index(xs.len())];
        }
        means.push(s / xs.len() as f64);
    }
    z * std_dev(&means)
}

/// Welford online mean/variance accumulator — handy for streaming
/// benchmark statistics without storing every sample.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold in one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean so far (0.0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance so far (0.0 with fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation so far.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert!((sample_variance(&xs) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(min(&[]), None);
        assert_eq!(max(&[2.0]), Some(2.0));
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantiles_interpolate() {
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(4.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.5));
    }

    #[test]
    fn normal_cdf_symmetry_and_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.975).abs() < 1e-3);
        assert!((normal_cdf(-1.96) - 0.025).abs() < 1e-3);
        for z in [-2.0, -0.5, 0.3, 1.7] {
            assert!((normal_cdf(z) + normal_cdf(-z) - 1.0).abs() < 1e-7);
        }
    }

    #[test]
    fn normal_pdf_peak() {
        assert!((normal_pdf(0.0) - 0.3989422804).abs() < 1e-9);
        assert!(normal_pdf(3.0) < normal_pdf(0.0));
    }

    #[test]
    fn erf_known_values() {
        // The A&S coefficients sum to 0.999999999, so erf(0) is ~1e-9, not 0.
        assert!(erf(0.0).abs() < 1e-8);
        assert!((erf(1.0) - 0.8427007929).abs() < 2e-7);
        assert!((erf(-1.0) + 0.8427007929).abs() < 2e-7);
        assert!((erf(3.0) - 0.9999779095).abs() < 1e-6);
    }

    #[test]
    fn running_stats_match_batch() {
        let xs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), xs.len() as u64);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - sample_variance(&xs)).abs() < 1e-12);
    }

    #[test]
    fn bootstrap_zero_for_constant_data() {
        let xs = [2.0; 16];
        let mut state = 12345u64;
        let hw = bootstrap_ci_half_width(&xs, 50, 1.96, |n| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % n
        });
        assert_eq!(hw, 0.0);
    }

    #[test]
    fn bootstrap_positive_for_varying_data() {
        let xs: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mut state = 99u64;
        let hw = bootstrap_ci_half_width(&xs, 200, 1.96, |n| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as usize % n
        });
        assert!(hw > 0.0);
        // Should be in the rough vicinity of 1.96 * sigma / sqrt(n).
        let expect = 1.96 * std_dev(&xs) / (xs.len() as f64).sqrt();
        assert!(
            hw > expect * 0.5 && hw < expect * 2.0,
            "hw = {hw}, expect ~{expect}"
        );
    }
}
