//! Property-based tests for the linear-algebra substrate.

use crowdtune_linalg::{lstsq, nnls, Cholesky, Matrix};
use proptest::prelude::*;

/// Strategy: a small random matrix with entries in [-5, 5].
fn matrix_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-5.0f64..5.0, r * c)
            .prop_map(move |data| Matrix::from_vec(r, c, data))
    })
}

/// Strategy: an SPD matrix built as B^T B + eps I.
fn spd_strategy(max_dim: usize) -> impl Strategy<Value = Matrix> {
    (1..=max_dim)
        .prop_flat_map(|n| {
            proptest::collection::vec(-2.0f64..2.0, n * n).prop_map(move |data| (n, data))
        })
        .prop_map(|(n, data)| {
            let b = Matrix::from_vec(n, n, data);
            let mut a = b.gram();
            for i in 0..n {
                a[(i, i)] += 0.5;
            }
            a
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn transpose_is_involution(m in matrix_strategy(6)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_transpose_identity(m in matrix_strategy(5)) {
        // (A^T A) must be symmetric.
        let g = m.gram();
        for i in 0..g.rows() {
            for j in 0..g.cols() {
                prop_assert!((g[(i, j)] - g[(j, i)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn cholesky_reconstructs_spd(a in spd_strategy(6)) {
        let ch = Cholesky::robust(&a).unwrap();
        let recon = ch.l().matmul(&ch.l().transpose());
        let scale = a.fro_norm().max(1.0);
        prop_assert!(recon.max_abs_diff(&a) < 1e-8 * scale + ch.jitter * 2.0);
    }

    #[test]
    fn cholesky_solve_inverts(a in spd_strategy(5), seed in 0u64..1000) {
        let n = a.rows();
        let x_true: Vec<f64> = (0..n).map(|i| ((seed + i as u64) % 7) as f64 - 3.0).collect();
        let b = a.matvec(&x_true);
        let ch = Cholesky::robust(&a).unwrap();
        let x = ch.solve_vec(&b);
        let ax = a.matvec(&x);
        for (got, want) in ax.iter().zip(b.iter()) {
            prop_assert!((got - want).abs() < 1e-6 * (1.0 + want.abs()));
        }
    }

    #[test]
    fn cholesky_log_det_positive_for_dominant(a in spd_strategy(5)) {
        // B^T B + 0.5 I has all eigenvalues >= 0.5, so det >= 0.5^n is fine,
        // and log det >= n * ln(0.5).
        let n = a.rows() as f64;
        let ch = Cholesky::robust(&a).unwrap();
        prop_assert!(ch.log_det() >= n * 0.5f64.ln() - 1e-9);
    }

    #[test]
    fn nnls_is_nonnegative_and_no_worse_than_zero(
        m in matrix_strategy(5),
        bseed in proptest::collection::vec(-3.0f64..3.0, 1..=5),
    ) {
        let rows = m.rows();
        let b: Vec<f64> = (0..rows).map(|i| bseed[i % bseed.len()]).collect();
        let x = nnls(&m, &b);
        prop_assert_eq!(x.len(), m.cols());
        for &xi in &x {
            prop_assert!(xi >= 0.0);
        }
        let ax = m.matvec(&x);
        let res: f64 = ax.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum();
        let zero_res: f64 = b.iter().map(|q| q * q).sum();
        prop_assert!(res <= zero_res + 1e-9);
    }

    #[test]
    fn lstsq_residual_orthogonal(
        m in matrix_strategy(5),
        bseed in proptest::collection::vec(-3.0f64..3.0, 1..=5),
    ) {
        // Only meaningful when rows >= cols; skip degenerate shapes.
        prop_assume!(m.rows() >= m.cols());
        let b: Vec<f64> = (0..m.rows()).map(|i| bseed[i % bseed.len()]).collect();
        let x = lstsq(&m, &b);
        let ax = m.matvec(&x);
        let r: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let atr = m.tr_matvec(&r);
        // A^T r ~ 0 for the exact LS solution; ridge fallback relaxes this,
        // so use a loose tolerance scaled to the data.
        let scale = m.fro_norm() * (1.0 + b.iter().map(|v| v.abs()).fold(0.0, f64::max));
        for v in atr {
            prop_assert!(v.abs() < 1e-4 * scale.max(1.0), "A^T r = {v}, scale {scale}");
        }
    }
}
