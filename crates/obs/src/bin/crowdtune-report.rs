//! `crowdtune-report` — summarize a per-run JSONL event journal, or
//! evaluate SLOs against a request-trace journal.
//!
//! ```text
//! crowdtune-report <journal.jsonl> [--snapshot <path>] [--min-kinds <n>] [--profile] [--quality]
//! crowdtune-report --slo <spec.json> [--trace <trace.jsonl>] [--metrics <metrics.json>]
//! ```
//!
//! In journal mode it reads the journal, schema-checking every line,
//! prints a per-stage time/count breakdown, and writes the aggregated
//! metrics snapshot to `--snapshot` (default `results/obs_snapshot.json`).
//! With `--profile` it instead prints the run's merged collapsed-stack
//! span profile (one `frame;frame;frame nanoseconds` line per stack —
//! pipe into any flamegraph renderer). With `--quality` it prints only
//! the data-quality section: per-contributor outlier/duplicate/
//! quarantine rollup and surrogate calibration diagnostics, failing if
//! the journal carries no quality or calibration events. In SLO mode a
//! `--trace` journal whose capture ring overflowed (dropped records)
//! prints a warning to stderr. Exits non-zero on an unreadable,
//! truncated or empty journal, any schema violation, or fewer distinct
//! event kinds than `--min-kinds` (default 1).
//!
//! In SLO mode (`--slo`) it parses the declarative objective spec,
//! evaluates latency objectives with multi-window burn rates over the
//! `--trace` journal (written by `crowd_load --trace`) and counter
//! objectives against the `--metrics` snapshot, prints the per-objective
//! report, and exits non-zero if any objective breached.

use std::process::ExitCode;

use crowdtune_obs::{
    evaluate_slos, parse_slo_file, read_journal, read_trace_journal, render_profile,
    render_quality, render_report, render_slo_report, summarize, MetricsSnapshot,
};
use serde::Deserialize;

fn run_slo(
    spec_path: &str,
    trace_path: Option<&str>,
    metrics_path: Option<&str>,
) -> Result<(), String> {
    let spec = parse_slo_file(spec_path).map_err(|e| format!("{spec_path}: {e}"))?;
    let traces = match trace_path {
        Some(p) => {
            let journal = read_trace_journal(p).map_err(|e| format!("{p}: {e}"))?;
            if journal.dropped > 0 {
                eprintln!(
                    "crowdtune-report: warning: {} trace record(s) dropped at capture \
                     (ring over capacity); latency quantiles may be biased",
                    journal.dropped
                );
            }
            journal.records
        }
        None => Vec::new(),
    };
    let snapshot = match metrics_path {
        Some(p) => {
            let text = std::fs::read_to_string(p).map_err(|e| format!("{p}: {e}"))?;
            let value = serde_json::parse(&text).map_err(|e| format!("{p}: {e}"))?;
            Some(MetricsSnapshot::from_value(&value).map_err(|e| format!("{p}: {e}"))?)
        }
        None => None,
    };
    let report = evaluate_slos(&spec, &traces, snapshot.as_ref());
    print!("{}", render_slo_report(&report));
    if report.any_breached() {
        return Err(format!(
            "{} objective(s) breached",
            report.outcomes.iter().filter(|o| o.breached).count()
        ));
    }
    println!(
        "all {} objectives within budget ({} trace records)",
        report.outcomes.len(),
        traces.len()
    );
    Ok(())
}

fn run() -> Result<(), String> {
    const USAGE: &str = "usage: crowdtune-report <journal.jsonl> [--snapshot <path>] \
         [--min-kinds <n>] [--profile] [--quality] | --slo <spec.json> \
         [--trace <trace.jsonl>] [--metrics <metrics.json>]";
    let mut args = std::env::args().skip(1);
    let mut journal_path: Option<String> = None;
    let mut snapshot_path = String::from("results/obs_snapshot.json");
    let mut min_kinds = 1usize;
    let mut profile = false;
    let mut quality = false;
    let mut slo_path: Option<String> = None;
    let mut trace_path: Option<String> = None;
    let mut metrics_path: Option<String> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--snapshot" => {
                snapshot_path = args.next().ok_or("--snapshot requires a path")?;
            }
            "--min-kinds" => {
                min_kinds = args
                    .next()
                    .ok_or("--min-kinds requires a number")?
                    .parse()
                    .map_err(|e| format!("--min-kinds: {e}"))?;
            }
            "--profile" => profile = true,
            "--quality" => quality = true,
            "--slo" => slo_path = Some(args.next().ok_or("--slo requires a spec path")?),
            "--trace" => trace_path = Some(args.next().ok_or("--trace requires a path")?),
            "--metrics" => metrics_path = Some(args.next().ok_or("--metrics requires a path")?),
            other if !other.starts_with('-') && journal_path.is_none() => {
                journal_path = Some(other.to_string());
            }
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }

    if let Some(spec) = &slo_path {
        return run_slo(spec, trace_path.as_deref(), metrics_path.as_deref());
    }
    let journal_path = journal_path.ok_or(USAGE)?;

    let events = read_journal(&journal_path).map_err(|e| format!("{journal_path}: {e}"))?;
    if events.is_empty() {
        return Err(format!("{journal_path}: journal is empty"));
    }
    let report = summarize(&journal_path, &events);
    if profile {
        if report.profile.is_empty() {
            return Err(format!(
                "{journal_path}: no profile events in journal (run with a journal installed \
                 so the tuner emits its collapsed-stack profile)"
            ));
        }
        print!("{}", render_profile(&report));
        return Ok(());
    }
    if quality {
        if report.quality_scored == 0 && report.calibration_points == 0 {
            return Err(format!(
                "{journal_path}: no quality or calibration events in journal (run the tuner \
                 through `tune_notla_with_quality` with a journal installed)"
            ));
        }
        print!("{}", render_quality(&report));
        return Ok(());
    }
    if report.event_counts.len() < min_kinds {
        return Err(format!(
            "{journal_path}: only {} distinct event kinds (need ≥ {min_kinds}): {:?}",
            report.event_counts.len(),
            report.event_counts.keys().collect::<Vec<_>>()
        ));
    }
    print!("{}", render_report(&report));

    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(parent) = std::path::Path::new(&snapshot_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{snapshot_path}: {e}"))?;
        }
    }
    std::fs::write(&snapshot_path, json).map_err(|e| format!("{snapshot_path}: {e}"))?;
    println!("\nsnapshot written to {snapshot_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("crowdtune-report: {e}");
            ExitCode::FAILURE
        }
    }
}
