//! `crowdtune-report` — summarize a per-run JSONL event journal.
//!
//! ```text
//! crowdtune-report <journal.jsonl> [--snapshot <path>] [--min-kinds <n>] [--profile]
//! ```
//!
//! Reads the journal, schema-checking every line, prints a per-stage
//! time/count breakdown, and writes the aggregated metrics snapshot to
//! `--snapshot` (default `results/obs_snapshot.json`). With `--profile` it
//! instead prints the run's merged collapsed-stack span profile (one
//! `frame;frame;frame nanoseconds` line per stack — pipe into any
//! flamegraph renderer). Exits non-zero on an unreadable, truncated or
//! empty journal, any schema violation, or fewer distinct event kinds than
//! `--min-kinds` (default 1).

use std::process::ExitCode;

use crowdtune_obs::{read_journal, render_profile, render_report, summarize};

fn run() -> Result<(), String> {
    let mut args = std::env::args().skip(1);
    let journal_path = args.next().ok_or(
        "usage: crowdtune-report <journal.jsonl> [--snapshot <path>] [--min-kinds <n>] [--profile]",
    )?;
    let mut snapshot_path = String::from("results/obs_snapshot.json");
    let mut min_kinds = 1usize;
    let mut profile = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--snapshot" => {
                snapshot_path = args.next().ok_or("--snapshot requires a path")?;
            }
            "--min-kinds" => {
                min_kinds = args
                    .next()
                    .ok_or("--min-kinds requires a number")?
                    .parse()
                    .map_err(|e| format!("--min-kinds: {e}"))?;
            }
            "--profile" => profile = true,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    let events = read_journal(&journal_path).map_err(|e| format!("{journal_path}: {e}"))?;
    if events.is_empty() {
        return Err(format!("{journal_path}: journal is empty"));
    }
    let report = summarize(&journal_path, &events);
    if profile {
        if report.profile.is_empty() {
            return Err(format!(
                "{journal_path}: no profile events in journal (run with a journal installed \
                 so the tuner emits its collapsed-stack profile)"
            ));
        }
        print!("{}", render_profile(&report));
        return Ok(());
    }
    if report.event_counts.len() < min_kinds {
        return Err(format!(
            "{journal_path}: only {} distinct event kinds (need ≥ {min_kinds}): {:?}",
            report.event_counts.len(),
            report.event_counts.keys().collect::<Vec<_>>()
        ));
    }
    print!("{}", render_report(&report));

    let json = serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?;
    if let Some(parent) = std::path::Path::new(&snapshot_path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(|e| format!("{snapshot_path}: {e}"))?;
        }
    }
    std::fs::write(&snapshot_path, json).map_err(|e| format!("{snapshot_path}: {e}"))?;
    println!("\nsnapshot written to {snapshot_path}");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("crowdtune-report: {e}");
            ExitCode::FAILURE
        }
    }
}
