//! Per-tuning-run JSONL event journal.
//!
//! A [`Journal`] appends one JSON object per line to a file; each line is an
//! internally-tagged [`Event`] (`"event": "<kind>"`). A journal is installed
//! process-wide with [`install_journal`]; instrumentation sites emit through
//! [`record_with`], which costs a single relaxed load while no journal is
//! installed (the event closure is not even evaluated). Journals are read
//! back and schema-checked with [`read_journal`]: every line must parse as
//! JSON *and* deserialize into a known [`Event`] variant.
//!
//! Fields that may be numerically undefined mid-run (best-so-far before the
//! first success, the NLL of a failed fit) are `Option<f64>` and serialize
//! as `null`; wrap raw floats with [`finite`] at emission sites so a NaN/∞
//! can never produce a line that fails its own schema check.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

/// One typed journal entry. The serialized form is internally tagged:
/// `{"event": "fit", ...}`, with variant names lowercased.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "lowercase")]
pub enum Event {
    /// A tuning run began.
    RunStart {
        /// Free-form run label (scenario/seed), used to correlate journals.
        run: String,
        /// Tuner/strategy name (e.g. `notla`, `ensemble-proposed`).
        tuner: String,
        /// Search-space dimensionality.
        dim: u64,
        /// Total evaluation budget.
        budget: u64,
        /// RNG seed.
        seed: u64,
    },
    /// One tuner iteration: a candidate was chosen and evaluated.
    Iteration {
        /// Zero-based iteration index within the run.
        iter: u64,
        /// Evaluated point in unit-cube coordinates.
        point: Vec<f64>,
        /// Objective value, `null` when the evaluation failed.
        value: Option<f64>,
        /// Whether the evaluation succeeded.
        ok: bool,
        /// Which proposer produced the candidate.
        proposed_by: String,
        /// Best successful objective value so far, `null` before the first.
        best: Option<f64>,
        /// Wall-clock microseconds spent on this iteration.
        duration_us: u64,
    },
    /// A surrogate model was fitted.
    Fit {
        /// Model kind (`gp` or `lcm`).
        model: String,
        /// Number of training points.
        points: u64,
        /// Number of optimizer restarts attempted.
        restarts: u64,
        /// Best negative log marginal likelihood, `null` if no start
        /// converged and a fallback was used.
        nll: Option<f64>,
        /// Wall-clock microseconds spent fitting.
        duration_us: u64,
        /// Whether the fit failed (no start converged), forcing the caller
        /// onto its fallback path.
        fallback: bool,
    },
    /// One multistart restart of the hyperparameter optimizer.
    Restart {
        /// Start index within the multistart batch.
        index: u64,
        /// Final objective (NLL) of this start, `null` if non-finite.
        nll: Option<f64>,
        /// L-BFGS iterations consumed.
        iterations: u64,
        /// Stop reason reported by the optimizer.
        stop: String,
    },
    /// An acquisition-scoring batch completed.
    Acquisition {
        /// Acquisition kind (`ei`, `lcb`, …).
        kind: String,
        /// Number of candidates scored.
        candidates: u64,
        /// Best acquisition score in the batch, `null` if non-finite.
        best_score: Option<f64>,
        /// Wall-clock microseconds spent scoring.
        duration_us: u64,
    },
    /// A Cholesky factorization needed jitter escalation to succeed.
    Jitter {
        /// Matrix dimension.
        dim: u64,
        /// Final diagonal jitter applied (0 if the recovery failed).
        jitter: f64,
        /// Number of factorization attempts (1 = clean, >1 = escalated).
        attempts: u64,
        /// Whether a factorization was eventually obtained.
        recovered: bool,
    },
    /// An L-BFGS Wolfe line search failed to find an acceptable step.
    LineSearch {
        /// Optimizer iteration at which the line search failed.
        iteration: u64,
    },
    /// Failed configurations were excluded from an acquisition pool.
    Exclusion {
        /// Number of known failed points driving the exclusion.
        failed: u64,
        /// Candidates removed from the pool.
        removed: u64,
        /// Pool size after exclusion.
        pool: u64,
    },
    /// Per-iteration ensemble/weighted-sum member weights.
    Weights {
        /// Strategy emitting the weights.
        strategy: String,
        /// One weight (or selection probability) per member, member order.
        weights: Vec<f64>,
        /// Member chosen this iteration (empty if not a selection policy).
        chosen: String,
    },
    /// A history-database query completed.
    DbQuery {
        /// Query description (problem name or filter summary).
        query: String,
        /// Records scanned before filtering.
        scanned: u64,
        /// Records returned after filtering.
        returned: u64,
        /// Records withheld by access control.
        denied: u64,
        /// Results served from the shard query cache (0 on the embedded
        /// store path or with caching disabled).
        #[serde(default)]
        cache_hits: u64,
        /// Cacheable lookups that missed the query cache.
        #[serde(default)]
        cache_misses: u64,
        /// Results served as epoch-stamped stale cache entries by a
        /// degraded shard (0 on journals predating overload control).
        #[serde(default)]
        stale_served: u64,
        /// Wall-clock microseconds spent in the query.
        duration_us: u64,
    },
    /// Evaluation records were uploaded to the history database.
    Upload {
        /// Records accepted.
        accepted: u64,
        /// Records rejected (auth/validation).
        rejected: u64,
        /// Contributor the accepted records belong to (empty when the
        /// upload was rejected before authentication, or on journals
        /// predating provenance).
        #[serde(default)]
        contributor: String,
        /// Upload batch id stamped into the records' provenance (0 on
        /// journals predating provenance).
        #[serde(default)]
        batch: u64,
        /// Wall-clock microseconds spent uploading.
        duration_us: u64,
    },
    /// A Saltelli design was generated for Sobol sensitivity analysis.
    Saltelli {
        /// Input dimensionality of the design.
        dim: u64,
        /// Base sample count `N`.
        n: u64,
        /// Model evaluations the design requires (`n * (dim + 2)`).
        total_evals: u64,
        /// Base-point scheme (`sobol` quasi-random or `rng` fallback).
        scheme: String,
        /// Wall-clock microseconds spent generating the design.
        duration_us: u64,
    },
    /// Sobol sensitivity indices were estimated from Saltelli evaluations.
    Sobol {
        /// Number of input parameters analyzed.
        dim: u64,
        /// Base sample count the estimators ran on.
        n: u64,
        /// Bootstrap resamples drawn for confidence intervals.
        bootstrap: u64,
        /// Variance of the pooled base evaluations, `null` if non-finite.
        variance: Option<f64>,
        /// Wall-clock microseconds spent estimating.
        duration_us: u64,
    },
    /// A search space was reduced after sensitivity analysis.
    SpaceReduce {
        /// Dimensionality of the full space.
        full_dim: u64,
        /// Parameters kept tunable.
        kept: u64,
        /// Parameters pinned to fixed values.
        fixed: u64,
    },
    /// Collapsed-stack span profile of a finished run: each key is a
    /// `;`-joined span path rooted at the run span, each value the total
    /// nanoseconds spent with exactly that stack open.
    Profile {
        /// Folded stack path → total nanoseconds.
        folded: BTreeMap<String, u64>,
    },
    /// An incremental surrogate decided between a cheap rank-1 append
    /// and a scheduled/triggered full refit.
    Refit {
        /// Surrogate model ("gp" or "lcm").
        model: String,
        /// Training points after this observation.
        points: u64,
        /// Why this path was taken: "append", "schedule", "nll",
        /// or "fallback" (append failed, forced full rebuild).
        reason: String,
        /// `true` when a full refit ran, `false` for a rank-1 append.
        full: bool,
        /// Incremental updates absorbed since the last full refit.
        updates_since_full: u64,
        /// Per-point NLL under the current hyperparameters, `null` if
        /// non-finite.
        nll_per_point: Option<f64>,
    },
    /// A hyperparameter fit seeded L-BFGS from the previous optimum.
    Warmstart {
        /// Surrogate model ("gp" or "lcm").
        model: String,
        /// NLL of the warm start before optimization, `null` if
        /// non-finite.
        warm_nll: Option<f64>,
        /// NLL of the multi-start winner, `null` if non-finite.
        best_nll: Option<f64>,
        /// Restarts actually run (reduced when the warm start was
        /// competitive on the previous fit).
        restarts: u64,
        /// `true` when the restart count was reduced.
        reduced: bool,
    },
    /// A transient evaluation failure was retried by the tuner's retry
    /// policy instead of being recorded as permanent.
    Retry {
        /// Zero-based tuner iteration the retried evaluation belongs to.
        iter: u64,
        /// Attempt number that just failed (1 = first try).
        attempt: u64,
        /// Deterministic backoff charged before the next attempt, in
        /// simulated seconds (no wall-clock sleep is performed).
        backoff_s: f64,
        /// The transient error message.
        error: String,
    },
    /// A fault-injection plan perturbed a simulated evaluation.
    FaultInject {
        /// Zero-based objective-call index the fault was injected at.
        index: u64,
        /// Fault class (`transient`, `timeout`, `noise`, `corrupt`).
        kind: String,
        /// Human-readable description of the injected fault.
        detail: String,
        /// Document id the perturbed value was (or is about to be)
        /// stored under, when the caller uploads evaluations to the
        /// history database — 0 when unknown, so quality scoring can be
        /// validated against injected ground truth.
        #[serde(default)]
        doc: u64,
    },
    /// The tuner persisted a resumable checkpoint to the durable store.
    Checkpoint {
        /// Iterations completed at the time of the checkpoint.
        iter: u64,
        /// Serialized checkpoint size in bytes.
        bytes: u64,
        /// Blob key the checkpoint was stored under.
        key: String,
    },
    /// Durable state was recovered after a crash: a WAL replay on store
    /// startup, or a tuning run resumed from a checkpoint.
    Recovery {
        /// What recovered: `"wal"` (store startup) or `"checkpoint"`
        /// (tuner resume).
        source: String,
        /// Documents live after recovery (WAL) or history records
        /// restored (checkpoint).
        docs: u64,
        /// WAL records replayed on top of the snapshot (0 for checkpoint
        /// resumes).
        records: u64,
        /// Whether a torn tail was detected and truncated.
        torn: bool,
        /// Iteration the run resumed from, `null` for store recoveries.
        resumed_iter: Option<u64>,
    },
    /// An upload was scored against the current surrogate's predictive
    /// distribution by the online data-quality scorer (observe-only:
    /// scoring never changes what the surrogate fits).
    QualityScore {
        /// Zero-based tuner iteration (or upload sequence number) the
        /// scored observation belongs to.
        iter: u64,
        /// Document id of the scored upload, 0 when not database-backed.
        doc: u64,
        /// Contributor the observation is attributed to.
        contributor: String,
        /// Raw residual `y − μ(x)` against the surrogate's predictive
        /// mean, `null` when no surrogate was available yet.
        residual: Option<f64>,
        /// Standardized residual magnitude `|y − μ(x)| / σ(x)`, `null`
        /// when no surrogate was available yet.
        score: Option<f64>,
        /// Whether the online score crossed the outlier threshold.
        flagged: bool,
        /// Whether this configuration was already observed with a
        /// materially different objective value (duplicate-config
        /// disagreement).
        duplicate: bool,
    },
    /// A record's quarantine flag changed state. In this PR the
    /// lifecycle is observe-only: `flagged` records are marked and
    /// reported but still fitted, so tuner output is bitwise unchanged.
    Quarantine {
        /// Zero-based iteration (or upload sequence number) of the
        /// quarantined observation.
        iter: u64,
        /// Document id of the quarantined record, 0 when not
        /// database-backed.
        doc: u64,
        /// Contributor the record is attributed to.
        contributor: String,
        /// Why the record was flagged (`outlier`, `duplicate`,
        /// `sweep-outlier`).
        reason: String,
        /// Lifecycle state: `flagged` (this PR) — later PRs may add
        /// `quarantined`/`cleared` once enforcement lands.
        state: String,
    },
    /// Surrogate calibration diagnostics: predictive-interval coverage
    /// and NLL-per-point drift, sampled from the tuner loop.
    Calibration {
        /// Surrogate model ("gp" or "lcm").
        model: String,
        /// Held-out predictions scored so far (each observation is
        /// predicted before it is absorbed, so every point is held out).
        points: u64,
        /// Fraction of held-out observations inside the surrogate's 90%
        /// predictive interval, `null` before the first prediction.
        coverage90: Option<f64>,
        /// Mean predictive NLL per held-out point (y units), `null`
        /// before the first prediction.
        nll_pp: Option<f64>,
        /// Change in predictive NLL-per-point since the previous
        /// calibration event, `null` on the first.
        drift: Option<f64>,
        /// Best successful objective so far (simple-regret/convergence
        /// telemetry), `null` before the first success.
        best: Option<f64>,
    },
    /// The tuner escalated (or rebuilt) its surrogate tier: the exact GP
    /// was swapped for a crowd-scale sparse surrogate once the history
    /// crossed the configured size threshold.
    TierSwitch {
        /// Tier before the switch (`"exact"` or `"sparse"`).
        from: String,
        /// Tier after the switch (`"sparse"`).
        to: String,
        /// Observations held when the switch fired.
        points: u64,
        /// Size threshold that triggered the escalation.
        threshold: u64,
        /// Inducing points the sparse tier was built with.
        inducing: u64,
    },
    /// Admission control shed a request with a typed `Overloaded` error
    /// (never silently dropped, never acked-then-lost).
    Shed {
        /// Operation kind that was shed (`"upload"`, `"query"`, …).
        op: String,
        /// Shard the request targeted.
        shard: u64,
        /// Why the request was shed (`"queue_full"`, `"inflight_budget"`,
        /// `"shedding"`, or `"deadline"`).
        reason: String,
        /// Suggested client backoff carried in the typed error, ms.
        retry_after_ms: u64,
        /// Virtual write-queue depth at the shed decision.
        queue_depth: u64,
    },
    /// A shard's health state machine transitioned (hysteresis on queue
    /// depth and fsync latency): Healthy → Degraded → Shedding and back.
    Health {
        /// Shard whose health changed.
        shard: u64,
        /// State before the transition (`"healthy"`, `"degraded"`,
        /// `"shedding"`).
        from: String,
        /// State after the transition.
        to: String,
        /// Queue depth observed at the transition.
        queue_depth: u64,
    },
    /// A tuning run finished.
    RunEnd {
        /// Iterations executed.
        iterations: u64,
        /// Failed evaluations.
        failures: u64,
        /// Best successful objective value, `null` if every evaluation
        /// failed.
        best: Option<f64>,
        /// Wall-clock microseconds for the whole run.
        duration_us: u64,
    },
}

impl Event {
    /// The serialized tag of this event (`"fit"`, `"jitter"`, …).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "runstart",
            Event::Iteration { .. } => "iteration",
            Event::Fit { .. } => "fit",
            Event::Restart { .. } => "restart",
            Event::Acquisition { .. } => "acquisition",
            Event::Jitter { .. } => "jitter",
            Event::LineSearch { .. } => "linesearch",
            Event::Exclusion { .. } => "exclusion",
            Event::Weights { .. } => "weights",
            Event::DbQuery { .. } => "dbquery",
            Event::Upload { .. } => "upload",
            Event::Saltelli { .. } => "saltelli",
            Event::Sobol { .. } => "sobol",
            Event::SpaceReduce { .. } => "spacereduce",
            Event::Profile { .. } => "profile",
            Event::Refit { .. } => "refit",
            Event::Warmstart { .. } => "warmstart",
            Event::Retry { .. } => "retry",
            Event::FaultInject { .. } => "faultinject",
            Event::Checkpoint { .. } => "checkpoint",
            Event::Recovery { .. } => "recovery",
            Event::QualityScore { .. } => "qualityscore",
            Event::Quarantine { .. } => "quarantine",
            Event::Calibration { .. } => "calibration",
            Event::TierSwitch { .. } => "tierswitch",
            Event::Shed { .. } => "shed",
            Event::Health { .. } => "health",
            Event::RunEnd { .. } => "runend",
        }
    }
}

/// Maps a raw float to `Some` only when finite, so optional numeric journal
/// fields never serialize NaN/∞ (which JSON cannot represent).
pub fn finite(v: f64) -> Option<f64> {
    if v.is_finite() {
        Some(v)
    } else {
        None
    }
}

/// An append-only JSONL sink. Writes are serialized through an internal
/// mutex, so one journal may be shared by concurrent recorders.
pub struct Journal {
    path: PathBuf,
    writer: Mutex<BufWriter<File>>,
    lines: AtomicU64,
}

impl fmt::Debug for Journal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Journal")
            .field("path", &self.path)
            .field("lines", &self.lines.load(Ordering::Relaxed))
            .finish()
    }
}

impl Journal {
    /// Creates (truncating) a journal file at `path`, creating parent
    /// directories as needed.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        Ok(Journal {
            path,
            writer: Mutex::new(BufWriter::new(file)),
            lines: AtomicU64::new(0),
        })
    }

    /// Path the journal writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of events written so far.
    pub fn lines(&self) -> u64 {
        self.lines.load(Ordering::Relaxed)
    }

    /// Appends one event as a JSON line.
    pub fn record(&self, ev: &Event) -> std::io::Result<()> {
        let line = serde_json::to_string(ev)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        let mut w = self.writer.lock();
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
        self.lines.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.writer.lock().flush()
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = self.writer.lock().flush();
    }
}

static JOURNAL_ACTIVE: AtomicBool = AtomicBool::new(false);
static JOURNAL: OnceLock<RwLock<Option<Arc<Journal>>>> = OnceLock::new();

fn journal_slot() -> &'static RwLock<Option<Arc<Journal>>> {
    JOURNAL.get_or_init(|| RwLock::new(None))
}

/// Returns whether a journal is installed (one relaxed load).
#[inline]
pub fn journal_active() -> bool {
    JOURNAL_ACTIVE.load(Ordering::Relaxed)
}

/// Installs `journal` as the process-wide event sink, replacing (and
/// returning) any previous one.
pub fn install_journal(journal: Arc<Journal>) -> Option<Arc<Journal>> {
    let prev = journal_slot().write().replace(journal);
    JOURNAL_ACTIVE.store(true, Ordering::Relaxed);
    prev
}

/// Removes and returns the installed journal, if any.
pub fn uninstall_journal() -> Option<Arc<Journal>> {
    JOURNAL_ACTIVE.store(false, Ordering::Relaxed);
    journal_slot().write().take()
}

/// Path of the installed journal, if any.
pub fn journal_path() -> Option<PathBuf> {
    journal_slot()
        .read()
        .as_ref()
        .map(|j| j.path().to_path_buf())
}

/// Flushes the installed journal, if any.
pub fn journal_flush() {
    if let Some(j) = journal_slot().read().as_ref() {
        let _ = j.flush();
    }
}

/// Records the event produced by `build` into the installed journal. While
/// no journal is installed this is a single relaxed load and `build` is not
/// evaluated. Write errors are counted (`obs.journal_errors`) but never
/// propagate — observability must not fail the run being observed.
#[inline]
pub fn record_with<F: FnOnce() -> Event>(build: F) {
    if !journal_active() {
        return;
    }
    let journal = journal_slot().read().as_ref().cloned();
    if let Some(j) = journal {
        if j.record(&build()).is_err() {
            crate::metrics::count("obs.journal_errors", 1);
        }
    }
}

/// Error returned by [`read_journal`].
#[derive(Debug)]
pub enum JournalError {
    /// The journal file could not be read.
    Io(std::io::Error),
    /// A line failed to parse or schema-check.
    Schema {
        /// One-based line number of the offending line.
        line: usize,
        /// Parser/deserializer message.
        message: String,
    },
    /// The file's final line is not newline-terminated. [`Journal::record`]
    /// always appends a trailing `\n`, so a missing one means the last
    /// record was cut mid-write (crash, full disk, partial copy) — even if
    /// the fragment happens to parse as JSON.
    Truncated {
        /// One-based line number of the truncated record.
        line: usize,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Schema { line, message } => {
                write!(f, "journal schema violation at line {line}: {message}")
            }
            JournalError::Truncated { line } => {
                write!(
                    f,
                    "journal truncated at line {line}: last record is not \
                     newline-terminated (partial write?)"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Reads a JSONL journal back, schema-checking every line: each must be
/// valid JSON *and* deserialize into a known [`Event`] variant. Blank lines
/// are rejected (a truncated write is a violation, not noise), and a final
/// line with no trailing newline is reported as [`JournalError::Truncated`]
/// rather than parsed — [`Journal::record`] always terminates records, so
/// an unterminated tail is a cut-off write even when the fragment still
/// looks like JSON.
pub fn read_journal<P: AsRef<Path>>(path: P) -> Result<Vec<Event>, JournalError> {
    let data = std::fs::read_to_string(path.as_ref())?;
    let mut events = Vec::new();
    let mut rest = data.as_str();
    let mut lineno = 0usize;
    while !rest.is_empty() {
        lineno += 1;
        let line = match rest.find('\n') {
            Some(i) => {
                let line = &rest[..i];
                rest = &rest[i + 1..];
                line
            }
            None => return Err(JournalError::Truncated { line: lineno }),
        };
        let ev: Event = serde_json::from_str(line).map_err(|e| JournalError::Schema {
            line: lineno,
            message: e.to_string(),
        })?;
        events.push(ev);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_filters_non_finite() {
        assert_eq!(finite(1.5), Some(1.5));
        assert_eq!(finite(f64::NAN), None);
        assert_eq!(finite(f64::INFINITY), None);
    }

    #[test]
    fn record_with_is_inert_without_journal() {
        let _ = uninstall_journal();
        let mut built = false;
        record_with(|| {
            built = true;
            Event::LineSearch { iteration: 0 }
        });
        assert!(!built, "event closure must not run without a journal");
    }
}
