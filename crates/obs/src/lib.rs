//! Observability substrate for the crowdtune workspace.
//!
//! This crate is deliberately hand-rolled on top of `std` plus the vendored
//! `serde`/`serde_json`/`parking_lot` stand-ins (the build environment is
//! offline, so pulling crates.io `tracing` is not an option). It provides the
//! three primitives the rest of the workspace instruments itself with:
//!
//! 1. **Spans** ([`span`]) — lightweight wall-clock timers with parent
//!    nesting tracked on a thread-local stack. Closing a span feeds a
//!    process-global histogram (when metrics are enabled) and the active
//!    per-run scope (when one is open on the current thread).
//! 2. **Metrics** ([`metrics`]) — process-global counters and log₂-bucketed
//!    histograms behind sharded atomics. The disabled path is a single
//!    relaxed atomic load, so instrumented hot loops keep PR 1's
//!    bitwise-deterministic parallel behaviour at effectively zero cost.
//! 3. **Event journal** ([`journal`]) — a per-tuning-run JSONL sink recording
//!    one typed [`Event`] per interesting occurrence (iteration, surrogate
//!    fit, optimizer restart, acquisition batch, Cholesky jitter bump,
//!    failure exclusion, DB query/upload, …). Journals are parsed back and
//!    schema-checked by [`journal::read_journal`] and summarized by
//!    [`report`] / the `crowdtune-report` binary.
//!
//! Instrumentation is *observation only*: nothing in this crate consumes
//! randomness or perturbs floating-point evaluation order, so enabling any
//! combination of metrics/journal/scope never changes tuner output.

#![warn(missing_docs)]

pub mod journal;
pub mod metrics;
pub mod names;
pub mod report;
pub mod scope;
pub mod slo;
pub mod span;
pub mod trace;

pub use journal::{
    finite, install_journal, journal_active, journal_flush, journal_path, read_journal,
    record_with, uninstall_journal, Event, Journal, JournalError,
};
pub use metrics::{
    count, counter, counter_value, histogram, metrics_enabled, observe, reset_metrics,
    set_metrics_enabled, snapshot, Counter, Histogram, HistogramSummary, MetricsSnapshot,
};
pub use report::{
    profile_depth, render_profile, render_quality, render_report, summarize, worst_contributor,
    ContributorQuality, JournalReport, StageSummary,
};
pub use scope::{scope_active, scope_begin, scope_count, scope_end, ScopeStats};
pub use slo::{
    evaluate_slos, parse_slo_file, render_slo_report, SloFile, SloObjective, SloOutcome, SloReport,
    SloWindows, WindowBurn,
};
pub use span::{current_span, span, SpanGuard};
pub use trace::{
    configure_tracing, drain_traces, now_ns, read_trace_journal, reset_traces, set_ring_capacity,
    set_tracing_enabled, tracing_enabled, write_trace_journal, OpKind, RequestCtx, TraceConfig,
    TraceJournal, TraceRecord, TraceStage, NO_SHARD,
};
