//! Process-global counters and histograms behind sharded atomics.
//!
//! Metrics are off by default. Every recording entry point starts with a
//! single `Relaxed` load of one [`AtomicBool`]; when that reads `false` the
//! call returns immediately, so instrumenting a hot loop costs one predicted
//! branch. When enabled, updates go to one of [`SHARDS`] cache-line-padded
//! atomic cells chosen per thread, so concurrent recorders (rayon restart
//! workers, parallel bench seeds) do not bounce a shared cache line.
//! Reading a metric sums its shards; totals are exact, not sampled.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

/// Number of independent atomic cells per metric. Eight covers the thread
/// counts this workspace runs at without making snapshots expensive.
const SHARDS: usize = 8;

/// Number of log₂ buckets per histogram: values up to `2^43 - 1` (≈ 2.4 h in
/// nanoseconds) land in a distinct bucket, larger ones saturate the last.
const BUCKETS: usize = 44;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread is pinned to one shard, assigned round-robin at first use.
    static SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

fn shard_index() -> usize {
    SHARD.with(|s| *s)
}

/// Returns whether metric recording is currently enabled (one relaxed load).
#[inline]
pub fn metrics_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Globally enables or disables metric recording.
pub fn set_metrics_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// One atomic counter cell, padded to a cache line so shards never share one.
#[repr(align(64))]
struct PaddedCell(AtomicU64);

impl PaddedCell {
    fn new() -> Self {
        PaddedCell(AtomicU64::new(0))
    }
}

/// A monotonically increasing counter sharded across [`SHARDS`] atomic cells.
pub struct Counter {
    shards: [PaddedCell; SHARDS],
}

impl Counter {
    fn new() -> Self {
        Counter {
            shards: std::array::from_fn(|_| PaddedCell::new()),
        }
    }

    /// Adds `n` to the counter. No-op (single relaxed load) while metrics
    /// are disabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if !metrics_enabled() {
            return;
        }
        self.shards[shard_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all shards.
    pub fn value(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// One histogram shard: count/sum/max plus log₂ value buckets.
#[repr(align(64))]
struct HistShard {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl HistShard {
    fn new() -> Self {
        HistShard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    ((u64::BITS - v.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Upper bound of a log₂ bucket (inclusive).
fn bucket_upper(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        (1u64 << idx) - 1
    }
}

/// Lower bound of a log₂ bucket (inclusive). Bucket `idx` holds values in
/// `[2^(idx-1), 2^idx - 1]`; bucket 0 holds only 0.
fn bucket_lower(idx: usize) -> u64 {
    if idx == 0 {
        0
    } else {
        1u64 << (idx - 1)
    }
}

/// A log₂-bucketed histogram (typically of durations in nanoseconds),
/// sharded across [`SHARDS`] cells like [`Counter`].
pub struct Histogram {
    shards: [HistShard; SHARDS],
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            shards: std::array::from_fn(|_| HistShard::new()),
        }
    }

    /// Records one observation. No-op (single relaxed load) while metrics
    /// are disabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !metrics_enabled() {
            return;
        }
        let s = &self.shards[shard_index()];
        s.count.fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        s.max.fetch_max(v, Ordering::Relaxed);
        s.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Summarizes the histogram across all shards.
    pub fn summary(&self) -> HistogramSummary {
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        let mut buckets = [0u64; BUCKETS];
        for s in &self.shards {
            count += s.count.load(Ordering::Relaxed);
            sum += s.sum.load(Ordering::Relaxed);
            max = max.max(s.max.load(Ordering::Relaxed));
            for (acc, b) in buckets.iter_mut().zip(&s.buckets) {
                *acc += b.load(Ordering::Relaxed);
            }
        }
        // Quantiles interpolate *within* the containing log₂ bucket: the
        // requested rank's fractional position among the bucket's own
        // observations picks a point on [lower, upper], rather than always
        // reporting the bucket's upper bound (which overstated p50 by up to
        // 2× whenever the median bucket held few samples).
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = (q * count as f64).max(f64::MIN_POSITIVE);
            let mut seen = 0u64;
            for (idx, b) in buckets.iter().enumerate() {
                if *b == 0 {
                    continue;
                }
                let before = seen;
                seen += b;
                if seen as f64 >= target {
                    let lower = bucket_lower(idx) as f64;
                    let upper = bucket_upper(idx) as f64;
                    let frac = ((target - before as f64) / *b as f64).clamp(0.0, 1.0);
                    let est = lower + frac * (upper - lower);
                    return (est.round() as u64).min(max);
                }
            }
            max
        };
        HistogramSummary {
            count,
            sum,
            max,
            mean: if count == 0 {
                0.0
            } else {
                sum as f64 / count as f64
            },
            p50: quantile(0.50),
            p90: quantile(0.90),
            p99: quantile(0.99),
        }
    }

    fn reset(&self) {
        for s in &self.shards {
            s.count.store(0, Ordering::Relaxed);
            s.sum.store(0, Ordering::Relaxed);
            s.max.store(0, Ordering::Relaxed);
            for b in &s.buckets {
                b.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Point-in-time summary of one [`Histogram`]. Quantiles are interpolated
/// within the log₂ bucket containing the requested rank (and clamped to the
/// exact max), so a single-sample bucket reports its interpolated midpoint
/// rather than the bucket's upper bound.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSummary {
    /// Number of recorded observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Largest observation (exact).
    pub max: u64,
    /// Arithmetic mean (exact, from `sum / count`).
    pub mean: f64,
    /// Approximate median.
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

struct Registry {
    counters: RwLock<BTreeMap<&'static str, &'static Counter>>,
    histograms: RwLock<BTreeMap<&'static str, &'static Histogram>>,
}

static REGISTRY: OnceLock<Registry> = OnceLock::new();

fn registry() -> &'static Registry {
    REGISTRY.get_or_init(|| Registry {
        counters: RwLock::new(BTreeMap::new()),
        histograms: RwLock::new(BTreeMap::new()),
    })
}

/// Returns (registering on first use) the counter named `name`.
pub fn counter(name: &'static str) -> &'static Counter {
    let reg = registry();
    if let Some(c) = reg.counters.read().get(name) {
        return c;
    }
    let mut w = reg.counters.write();
    w.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Returns (registering on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> &'static Histogram {
    let reg = registry();
    if let Some(h) = reg.histograms.read().get(name) {
        return h;
    }
    let mut w = reg.histograms.write();
    w.entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Adds `n` to the counter named `name`. While metrics are disabled this is
/// a single relaxed load — the registry is not even consulted.
#[inline]
pub fn count(name: &'static str, n: u64) {
    if !metrics_enabled() {
        return;
    }
    counter(name).add(n);
}

/// Records `v` into the histogram named `name`. Single relaxed load while
/// metrics are disabled.
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if !metrics_enabled() {
        return;
    }
    histogram(name).record(v);
}

/// Current total of the counter named `name` (0 if never registered).
pub fn counter_value(name: &'static str) -> u64 {
    registry()
        .counters
        .read()
        .get(name)
        .map_or(0, |c| c.value())
}

/// Point-in-time export of every registered counter and histogram.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter totals keyed by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries keyed by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

/// Snapshots every registered metric.
pub fn snapshot() -> MetricsSnapshot {
    let reg = registry();
    let counters = reg
        .counters
        .read()
        .iter()
        .map(|(k, c)| (k.to_string(), c.value()))
        .collect();
    let histograms = reg
        .histograms
        .read()
        .iter()
        .map(|(k, h)| (k.to_string(), h.summary()))
        .collect();
    MetricsSnapshot {
        counters,
        histograms,
    }
}

/// Zeroes every registered metric (intended for tests and run isolation).
pub fn reset_metrics() {
    let reg = registry();
    for c in reg.counters.read().values() {
        c.reset();
    }
    for h in reg.histograms.read().values() {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_counters_do_not_count() {
        set_metrics_enabled(false);
        let c = counter("test.disabled");
        c.reset();
        c.add(5);
        count("test.disabled", 7);
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn enabled_counters_sum_across_shards() {
        set_metrics_enabled(true);
        let c = counter("test.enabled");
        c.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        c.add(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 4000);
        set_metrics_enabled(false);
    }

    #[test]
    fn histogram_summary_tracks_count_sum_max() {
        set_metrics_enabled(true);
        let h = histogram("test.hist");
        h.reset();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 3 && s.p50 <= 1000);
        set_metrics_enabled(false);
    }

    #[test]
    fn quantiles_interpolate_within_bucket() {
        set_metrics_enabled(true);

        // A single sample must not be reported as its bucket's upper bound:
        // 12 lands in bucket [8, 15], whose upper bound (15) was the old
        // p50. Interpolation lands mid-bucket and the max clamp makes the
        // single-sample case exact.
        let h = histogram("test.hist.single");
        h.reset();
        h.record(12);
        let s = h.summary();
        assert_eq!(s.p50, 12, "single sample: p50 must be exact, not 15");
        assert_eq!(s.p99, 12);

        // Two samples at the bucket's extremes: the median interpolates
        // inside [8, 15] instead of snapping to 15.
        let h = histogram("test.hist.pair");
        h.reset();
        h.record(8);
        h.record(15);
        let s = h.summary();
        assert!(
            s.p50 >= 8 && s.p50 < 15,
            "p50 = {} should interpolate within the bucket",
            s.p50
        );

        // Quantiles stay monotone and clamped to the exact max.
        let h = histogram("test.hist.spread");
        h.reset();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.summary();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 <= s.max);

        set_metrics_enabled(false);
    }

    #[test]
    fn bucket_of_is_monotone() {
        let mut prev = 0;
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1000, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= prev);
            prev = b;
        }
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }
}
