//! Well-known span, counter, and histogram names shared across crates.
//!
//! Instrumentation sites and consumers (RunStats, the report bin, tests)
//! must agree on these strings; keeping them here prevents silent drift.

/// Span: one full `Gp::fit` call, including its parallel multistart.
pub const SPAN_GP_FIT: &str = "gp_fit";
/// Span: one full `Lcm::fit` call, including its parallel multistart.
pub const SPAN_LCM_FIT: &str = "lcm_fit";
/// Span: one acquisition proposal (candidate generation + batch scoring).
pub const SPAN_ACQUISITION: &str = "acquisition";
/// Span: one strategy `propose` call inside the tuning loop.
pub const SPAN_PROPOSE: &str = "propose";
/// Span: one objective evaluation inside the tuning loop.
pub const SPAN_EVAL: &str = "eval";
/// Span: one history-database query.
pub const SPAN_DB_QUERY: &str = "db_query";
/// Span: one history-database upload (submit/submit_batch).
pub const SPAN_DB_UPLOAD: &str = "db_upload";

/// Counter: Cholesky factorizations that needed jitter escalation.
pub const CTR_JITTER_ESCALATIONS: &str = "linalg.jitter_escalations";
/// Counter: Cholesky factorizations that stayed indefinite after the full
/// jitter ladder.
pub const CTR_JITTER_EXHAUSTED: &str = "linalg.jitter_exhausted";
/// Counter: L-BFGS Wolfe line searches that failed to find a step.
pub const CTR_LINESEARCH_FAILURES: &str = "linalg.linesearch_failures";
/// Counter: multistart restarts executed across all fits.
pub const CTR_FIT_RESTARTS: &str = "gp.fit_restarts";
/// Counter: fits that fell back to default hyperparameters.
pub const CTR_FIT_FALLBACKS: &str = "gp.fit_fallbacks";
/// Counter: candidates scored by acquisition batches.
pub const CTR_ACQ_CANDIDATES: &str = "acq.candidates_scored";
/// Counter: candidates removed by failure-region exclusion.
pub const CTR_ACQ_EXCLUDED: &str = "acq.candidates_excluded";
/// Counter: history-database records scanned by queries.
pub const CTR_DB_SCANNED: &str = "db.records_scanned";
/// Counter: history-database records returned by queries.
pub const CTR_DB_RETURNED: &str = "db.records_returned";
/// Counter: history-database records withheld by access control.
pub const CTR_DB_DENIED: &str = "db.records_denied";
/// Counter: records accepted by history-database uploads.
pub const CTR_DB_UPLOADED: &str = "db.records_uploaded";
/// Counter: records rejected by history-database uploads.
pub const CTR_DB_REJECTED: &str = "db.records_rejected";
/// Counter: failed objective evaluations observed by the tuning loop.
pub const CTR_TUNE_FAILURES: &str = "tune.failures";
/// Counter: tuner iterations executed.
pub const CTR_TUNE_ITERATIONS: &str = "tune.iterations";
