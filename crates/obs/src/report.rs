//! Journal summarization: the library half of the `crowdtune-report` bin.
//!
//! [`summarize`] folds a parsed journal into a [`JournalReport`] — per-stage
//! time/count breakdown plus recovery totals — and [`render_report`] formats
//! it as the human table the bin prints. The report structure itself is
//! serializable and doubles as the `results/obs_snapshot.json` export.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::journal::Event;

/// Aggregate of one journal stage (fit, acquisition, db query, …).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StageSummary {
    /// Number of events in the stage.
    pub count: u64,
    /// Total wall-clock microseconds across events.
    pub total_us: u64,
    /// Mean microseconds per event.
    pub mean_us: f64,
    /// Largest single event in microseconds.
    pub max_us: u64,
}

impl StageSummary {
    fn add(&mut self, us: u64) {
        self.count += 1;
        self.total_us += us;
        self.max_us = self.max_us.max(us);
        self.mean_us = self.total_us as f64 / self.count as f64;
    }
}

/// Everything `crowdtune-report` derives from one journal.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct JournalReport {
    /// Journal path this report was built from (tagging for the snapshot).
    pub journal: String,
    /// Total events in the journal.
    pub events_total: u64,
    /// Events per kind (`"fit"`, `"jitter"`, …).
    pub event_counts: BTreeMap<String, u64>,
    /// Time/count breakdown per timed stage.
    pub stages: BTreeMap<String, StageSummary>,
    /// Tuner iterations observed.
    pub iterations: u64,
    /// Failed evaluations observed.
    pub failures: u64,
    /// Best objective value across all runs in the journal.
    pub best: Option<f64>,
    /// Surrogate fits (gp + lcm).
    pub fits: u64,
    /// Fits that fell back to default hyperparameters.
    pub fit_fallbacks: u64,
    /// Optimizer restarts journaled.
    pub restarts: u64,
    /// Total L-BFGS iterations across journaled restarts.
    pub lbfgs_iterations: u64,
    /// Cholesky jitter escalations journaled.
    pub jitter_escalations: u64,
    /// Jitter recoveries that exhausted the ladder without factorizing.
    pub jitter_exhausted: u64,
    /// L-BFGS line-search failures journaled.
    pub linesearch_failures: u64,
    /// Candidates removed by failure exclusion.
    pub excluded_candidates: u64,
    /// DB records scanned by journaled queries.
    pub db_scanned: u64,
    /// DB records returned by journaled queries.
    pub db_returned: u64,
    /// DB records withheld by access control.
    pub db_denied: u64,
    /// Journaled queries answered from the shard query cache.
    #[serde(default)]
    pub db_cache_hits: u64,
    /// Journaled cacheable queries that missed the query cache.
    #[serde(default)]
    pub db_cache_misses: u64,
    /// Journaled reads answered from epoch-stamped stale cache entries
    /// by degraded shards.
    #[serde(default)]
    pub db_stale_served: u64,
    /// Requests shed by admission control with a typed `Overloaded`.
    #[serde(default)]
    pub db_shed: u64,
    /// Requests shed specifically for an expired deadline.
    #[serde(default)]
    pub db_deadline_exceeded: u64,
    /// Shard health transitions journaled (degradation-ladder moves).
    #[serde(default)]
    pub db_health_transitions: u64,
    /// Records accepted by journaled uploads.
    pub uploads_accepted: u64,
    /// Records rejected by journaled uploads.
    pub uploads_rejected: u64,
    /// Model evaluations consumed by journaled Saltelli designs.
    #[serde(default)]
    pub saltelli_evals: u64,
    /// Sobol index estimations journaled.
    #[serde(default)]
    pub sobol_estimates: u64,
    /// Sensitivity-driven space reductions journaled.
    #[serde(default)]
    pub space_reductions: u64,
    /// Full surrogate refits journaled by the incremental path.
    #[serde(default)]
    pub full_refits: u64,
    /// Rank-1 incremental surrogate updates journaled.
    #[serde(default)]
    pub incremental_updates: u64,
    /// Hyperparameter fits that ran with a reduced restart count because
    /// the warm start was competitive.
    #[serde(default)]
    pub warmstarts_reduced: u64,
    /// Transient evaluation failures retried by the tuner's retry policy.
    #[serde(default)]
    pub retries: u64,
    /// Faults injected into simulated evaluations, per kind.
    #[serde(default)]
    pub faults_injected: BTreeMap<String, u64>,
    /// Resumable tuner checkpoints persisted.
    #[serde(default)]
    pub checkpoints: u64,
    /// Recoveries journaled (WAL replays + checkpoint resumes).
    #[serde(default)]
    pub recoveries: u64,
    /// Recoveries that detected and truncated a torn WAL tail.
    #[serde(default)]
    pub torn_recoveries: u64,
    /// Merged collapsed-stack profile across all `profile` events: folded
    /// span path (`tune;propose;gp_fit`) → total nanoseconds.
    #[serde(default)]
    pub profile: BTreeMap<String, u64>,
    /// Uploads scored by the online data-quality scorer.
    #[serde(default)]
    pub quality_scored: u64,
    /// Scored uploads whose standardized residual crossed the outlier
    /// threshold.
    #[serde(default)]
    pub quality_flagged: u64,
    /// Duplicate-configuration disagreements detected.
    #[serde(default)]
    pub quality_duplicates: u64,
    /// Records moved into the observe-only quarantine-flag state.
    #[serde(default)]
    pub quarantined: u64,
    /// Per-contributor data-quality rollup, keyed by contributor id.
    #[serde(default)]
    pub contributors: BTreeMap<String, ContributorQuality>,
    /// Held-out points scored by calibration tracking (last `calibration`
    /// event's cumulative count).
    #[serde(default)]
    pub calibration_points: u64,
    /// 90%-interval coverage from the last `calibration` event.
    #[serde(default)]
    pub coverage90: Option<f64>,
    /// Predictive NLL per held-out point from the last `calibration`
    /// event.
    #[serde(default)]
    pub calibration_nll_pp: Option<f64>,
    /// NLL-per-point drift from the last `calibration` event carrying one.
    #[serde(default)]
    pub calibration_drift: Option<f64>,
    /// Surrogate-tier escalations journaled (exact → sparse switches).
    #[serde(default)]
    pub tier_switches: u64,
    /// Tier in force after the last `tierswitch` event, empty when the
    /// journal carried none (the run stayed on the exact GP).
    #[serde(default)]
    pub tier_last: String,
    /// Observation count at the last tier switch.
    #[serde(default)]
    pub tier_points: u64,
    /// Inducing points of the sparse tier at the last switch.
    #[serde(default)]
    pub tier_inducing: u64,
}

/// Per-contributor slice of the data-quality rollup.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ContributorQuality {
    /// Records this contributor uploaded (from `upload` events).
    #[serde(default)]
    pub uploads: u64,
    /// Observations scored against the surrogate.
    #[serde(default)]
    pub scored: u64,
    /// Scored observations flagged as outliers online.
    #[serde(default)]
    pub flagged: u64,
    /// Duplicate-configuration disagreements attributed here.
    #[serde(default)]
    pub duplicates: u64,
    /// Records of this contributor in the quarantine-flag state.
    #[serde(default)]
    pub quarantined: u64,
    /// Largest standardized-residual score observed.
    #[serde(default)]
    pub worst_score: Option<f64>,
}

fn better(best: &mut Option<f64>, candidate: Option<f64>) {
    if let Some(c) = candidate {
        if best.is_none_or(|b| c < b) {
            *best = Some(c);
        }
    }
}

/// Folds parsed journal events into a [`JournalReport`]. `journal` is the
/// path tag recorded in the report.
pub fn summarize(journal: &str, events: &[Event]) -> JournalReport {
    let mut r = JournalReport {
        journal: journal.to_string(),
        events_total: events.len() as u64,
        ..JournalReport::default()
    };
    for ev in events {
        *r.event_counts.entry(ev.kind().to_string()).or_insert(0) += 1;
        match ev {
            Event::RunStart { .. } => {}
            Event::Iteration {
                ok,
                best,
                duration_us,
                ..
            } => {
                r.iterations += 1;
                if !ok {
                    r.failures += 1;
                }
                better(&mut r.best, *best);
                r.stages
                    .entry("iteration".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::Fit {
                duration_us,
                fallback,
                ..
            } => {
                r.fits += 1;
                if *fallback {
                    r.fit_fallbacks += 1;
                }
                r.stages
                    .entry("fit".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::Restart { iterations, .. } => {
                r.restarts += 1;
                r.lbfgs_iterations += iterations;
            }
            Event::Acquisition { duration_us, .. } => {
                r.stages
                    .entry("acquisition".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::Jitter {
                attempts,
                recovered,
                ..
            } => {
                if *attempts > 1 {
                    r.jitter_escalations += 1;
                }
                if !recovered {
                    r.jitter_exhausted += 1;
                }
            }
            Event::LineSearch { .. } => r.linesearch_failures += 1,
            Event::Exclusion { removed, .. } => r.excluded_candidates += removed,
            Event::Weights { .. } => {}
            Event::DbQuery {
                scanned,
                returned,
                denied,
                cache_hits,
                cache_misses,
                stale_served,
                duration_us,
                ..
            } => {
                r.db_scanned += scanned;
                r.db_returned += returned;
                r.db_denied += denied;
                r.db_cache_hits += cache_hits;
                r.db_cache_misses += cache_misses;
                r.db_stale_served += stale_served;
                r.stages
                    .entry("db_query".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::Upload {
                accepted,
                rejected,
                contributor,
                duration_us,
                ..
            } => {
                r.uploads_accepted += accepted;
                r.uploads_rejected += rejected;
                if !contributor.is_empty() {
                    r.contributors
                        .entry(contributor.clone())
                        .or_default()
                        .uploads += accepted;
                }
                r.stages
                    .entry("db_upload".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::Saltelli {
                total_evals,
                duration_us,
                ..
            } => {
                r.saltelli_evals += total_evals;
                r.stages
                    .entry("saltelli".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::Sobol { duration_us, .. } => {
                r.sobol_estimates += 1;
                r.stages
                    .entry("sobol".to_string())
                    .or_default()
                    .add(*duration_us);
            }
            Event::SpaceReduce { .. } => r.space_reductions += 1,
            Event::Refit { full, .. } => {
                if *full {
                    r.full_refits += 1;
                } else {
                    r.incremental_updates += 1;
                }
            }
            Event::Warmstart { reduced, .. } => {
                if *reduced {
                    r.warmstarts_reduced += 1;
                }
            }
            Event::Retry { .. } => r.retries += 1,
            Event::FaultInject { kind, .. } => {
                *r.faults_injected.entry(kind.clone()).or_insert(0) += 1;
            }
            Event::Checkpoint { .. } => r.checkpoints += 1,
            Event::Recovery { torn, .. } => {
                r.recoveries += 1;
                if *torn {
                    r.torn_recoveries += 1;
                }
            }
            Event::QualityScore {
                contributor,
                score,
                flagged,
                duplicate,
                ..
            } => {
                r.quality_scored += 1;
                let c = r.contributors.entry(contributor.clone()).or_default();
                c.scored += 1;
                if *flagged {
                    r.quality_flagged += 1;
                    c.flagged += 1;
                }
                if *duplicate {
                    r.quality_duplicates += 1;
                    c.duplicates += 1;
                }
                if let Some(s) = score {
                    if c.worst_score.is_none_or(|w| *s > w) {
                        c.worst_score = Some(*s);
                    }
                }
            }
            Event::Quarantine { contributor, .. } => {
                r.quarantined += 1;
                r.contributors
                    .entry(contributor.clone())
                    .or_default()
                    .quarantined += 1;
            }
            Event::Calibration {
                points,
                coverage90,
                nll_pp,
                drift,
                ..
            } => {
                r.calibration_points = r.calibration_points.max(*points);
                if coverage90.is_some() {
                    r.coverage90 = *coverage90;
                }
                if nll_pp.is_some() {
                    r.calibration_nll_pp = *nll_pp;
                }
                if drift.is_some() {
                    r.calibration_drift = *drift;
                }
            }
            Event::TierSwitch {
                to,
                points,
                inducing,
                ..
            } => {
                r.tier_switches += 1;
                r.tier_last = to.clone();
                r.tier_points = *points;
                r.tier_inducing = *inducing;
            }
            Event::Shed {
                reason,
                retry_after_ms: _,
                ..
            } => {
                r.db_shed += 1;
                if reason == "deadline" {
                    r.db_deadline_exceeded += 1;
                }
            }
            Event::Health { .. } => r.db_health_transitions += 1,
            Event::Profile { folded } => {
                for (path, ns) in folded {
                    *r.profile.entry(path.clone()).or_insert(0) += ns;
                }
            }
            Event::RunEnd { duration_us, .. } => {
                r.stages
                    .entry("run".to_string())
                    .or_default()
                    .add(*duration_us);
            }
        }
    }
    r
}

/// Renders the merged collapsed-stack profile in the standard flamegraph
/// input format: one `frame;frame;frame value` line per folded stack, where
/// the value is total nanoseconds. Empty when the journal carried no
/// `profile` events.
pub fn render_profile(r: &JournalReport) -> String {
    let mut out = String::new();
    for (path, ns) in &r.profile {
        out.push_str(&format!("{path} {ns}\n"));
    }
    out
}

/// Deepest stack (number of frames) in the merged profile.
pub fn profile_depth(r: &JournalReport) -> usize {
    r.profile
        .keys()
        .map(|p| p.split(';').count())
        .max()
        .unwrap_or(0)
}

/// Formats a report as the aligned human-readable table printed by the
/// `crowdtune-report` bin.
pub fn render_report(r: &JournalReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("journal   {}\n", r.journal));
    out.push_str(&format!("events    {}\n", r.events_total));
    out.push_str("\nevent counts\n");
    for (kind, n) in &r.event_counts {
        out.push_str(&format!("  {kind:<12} {n:>8}\n"));
    }
    out.push_str("\nstage breakdown\n");
    out.push_str(&format!(
        "  {:<12} {:>8} {:>12} {:>12} {:>12}\n",
        "stage", "count", "total_ms", "mean_us", "max_us"
    ));
    for (stage, s) in &r.stages {
        out.push_str(&format!(
            "  {:<12} {:>8} {:>12.3} {:>12.1} {:>12}\n",
            stage,
            s.count,
            s.total_us as f64 / 1e3,
            s.mean_us,
            s.max_us
        ));
    }
    out.push_str("\ntuning\n");
    out.push_str(&format!("  iterations          {:>8}\n", r.iterations));
    out.push_str(&format!("  failures            {:>8}\n", r.failures));
    match r.best {
        Some(b) => out.push_str(&format!("  best                {b:>8.6}\n")),
        None => out.push_str("  best                    none\n"),
    }
    out.push_str(&format!("  fits                {:>8}\n", r.fits));
    out.push_str(&format!("  fit fallbacks       {:>8}\n", r.fit_fallbacks));
    out.push_str(&format!("  restarts            {:>8}\n", r.restarts));
    out.push_str(&format!(
        "  lbfgs iterations    {:>8}\n",
        r.lbfgs_iterations
    ));
    if r.tier_switches > 0 {
        out.push_str(&format!(
            "  surrogate tier      {:>8} ({} switches, n={} m={})\n",
            r.tier_last, r.tier_switches, r.tier_points, r.tier_inducing
        ));
    } else {
        out.push_str("  surrogate tier         exact\n");
    }
    out.push_str("\nnumerical recoveries\n");
    out.push_str(&format!(
        "  jitter escalations  {:>8}\n",
        r.jitter_escalations
    ));
    out.push_str(&format!(
        "  jitter exhausted    {:>8}\n",
        r.jitter_exhausted
    ));
    out.push_str(&format!(
        "  line-search fails   {:>8}\n",
        r.linesearch_failures
    ));
    out.push_str("\ndatabase\n");
    out.push_str(&format!("  records scanned     {:>8}\n", r.db_scanned));
    out.push_str(&format!("  records returned    {:>8}\n", r.db_returned));
    out.push_str(&format!("  records denied      {:>8}\n", r.db_denied));
    out.push_str(&format!("  cache hits          {:>8}\n", r.db_cache_hits));
    out.push_str(&format!("  cache misses        {:>8}\n", r.db_cache_misses));
    if r.db_shed > 0 || r.db_stale_served > 0 || r.db_health_transitions > 0 {
        out.push_str(&format!("  requests shed       {:>8}\n", r.db_shed));
        out.push_str(&format!(
            "  deadline exceeded   {:>8}\n",
            r.db_deadline_exceeded
        ));
        out.push_str(&format!("  stale cache serves  {:>8}\n", r.db_stale_served));
        out.push_str(&format!(
            "  health transitions  {:>8}\n",
            r.db_health_transitions
        ));
    }
    out.push_str(&format!(
        "  uploads accepted    {:>8}\n",
        r.uploads_accepted
    ));
    out.push_str(&format!(
        "  uploads rejected    {:>8}\n",
        r.uploads_rejected
    ));
    out.push_str("\nfault tolerance\n");
    out.push_str(&format!("  retries             {:>8}\n", r.retries));
    let faults_total: u64 = r.faults_injected.values().sum();
    out.push_str(&format!("  faults injected     {faults_total:>8}\n"));
    for (kind, n) in &r.faults_injected {
        out.push_str(&format!("    {kind:<16} {n:>8}\n"));
    }
    out.push_str(&format!("  checkpoints         {:>8}\n", r.checkpoints));
    out.push_str(&format!("  recoveries          {:>8}\n", r.recoveries));
    out.push_str(&format!("  torn-tail recoveries{:>8}\n", r.torn_recoveries));
    out.push_str("\nsensitivity\n");
    out.push_str(&format!("  saltelli evals      {:>8}\n", r.saltelli_evals));
    out.push_str(&format!("  sobol estimates     {:>8}\n", r.sobol_estimates));
    out.push_str(&format!(
        "  space reductions    {:>8}\n",
        r.space_reductions
    ));
    if r.quality_scored > 0 || r.calibration_points > 0 || !r.contributors.is_empty() {
        out.push('\n');
        out.push_str(&render_quality(r));
    }
    if !r.profile.is_empty() {
        out.push_str(&format!(
            "\nprofile   {} folded stacks, max depth {} (render with --profile)\n",
            r.profile.len(),
            profile_depth(r)
        ));
    }
    out
}

/// Formats the data-quality section on its own — the body of
/// `crowdtune-report --quality`. Covers scorer totals, the per-contributor
/// rollup (sorted worst-first by flags), and surrogate calibration.
pub fn render_quality(r: &JournalReport) -> String {
    let mut out = String::new();
    out.push_str("data quality\n");
    out.push_str(&format!("  uploads scored      {:>8}\n", r.quality_scored));
    out.push_str(&format!("  outliers flagged    {:>8}\n", r.quality_flagged));
    out.push_str(&format!(
        "  duplicate disagree  {:>8}\n",
        r.quality_duplicates
    ));
    out.push_str(&format!("  quarantined         {:>8}\n", r.quarantined));
    if r.quality_scored > 0 {
        out.push_str(&format!(
            "  outlier rate        {:>8.4}\n",
            r.quality_flagged as f64 / r.quality_scored as f64
        ));
    }
    if !r.contributors.is_empty() {
        out.push_str("\ncontributors (worst first)\n");
        out.push_str(&format!(
            "  {:<16} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}\n",
            "contributor", "uploads", "scored", "flagged", "quarant", "dup", "worst_score"
        ));
        let mut rows: Vec<(&String, &ContributorQuality)> = r.contributors.iter().collect();
        rows.sort_by(|a, b| {
            (b.1.flagged + b.1.quarantined)
                .cmp(&(a.1.flagged + a.1.quarantined))
                .then_with(|| a.0.cmp(b.0))
        });
        for (name, c) in rows {
            let worst = match c.worst_score {
                Some(w) => format!("{w:>12.2}"),
                None => format!("{:>12}", "-"),
            };
            out.push_str(&format!(
                "  {:<16} {:>8} {:>8} {:>8} {:>8} {:>10} {worst}\n",
                name, c.uploads, c.scored, c.flagged, c.quarantined, c.duplicates
            ));
        }
    }
    out.push_str("\ncalibration\n");
    out.push_str(&format!(
        "  points scored       {:>8}\n",
        r.calibration_points
    ));
    match r.coverage90 {
        Some(c) => out.push_str(&format!("  coverage@90         {c:>8.4}\n")),
        None => out.push_str("  coverage@90             none\n"),
    }
    match r.calibration_nll_pp {
        Some(n) => out.push_str(&format!("  nll per point       {n:>8.4}\n")),
        None => out.push_str("  nll per point           none\n"),
    }
    match r.calibration_drift {
        Some(d) => out.push_str(&format!("  nll drift           {d:>8.4}\n")),
        None => out.push_str("  nll drift               none\n"),
    }
    out
}

/// The contributor with the most flagged + quarantined records, if any
/// contributor has at least one. This is what "names the injected bad
/// contributor" means operationally: smokes assert on this value.
pub fn worst_contributor(r: &JournalReport) -> Option<(&str, &ContributorQuality)> {
    r.contributors
        .iter()
        .filter(|(_, c)| c.flagged + c.quarantined > 0)
        .max_by(|a, b| {
            (a.1.flagged + a.1.quarantined)
                .cmp(&(b.1.flagged + b.1.quarantined))
                .then_with(|| b.0.cmp(a.0))
        })
        .map(|(name, c)| (name.as_str(), c))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summarize_counts_stages_and_recoveries() {
        let events = vec![
            Event::RunStart {
                run: "t".into(),
                tuner: "notla".into(),
                dim: 2,
                budget: 4,
                seed: 1,
            },
            Event::Iteration {
                iter: 0,
                point: vec![0.5, 0.5],
                value: Some(1.0),
                ok: true,
                proposed_by: "init".into(),
                best: Some(1.0),
                duration_us: 10,
            },
            Event::Iteration {
                iter: 1,
                point: vec![0.1, 0.9],
                value: None,
                ok: false,
                proposed_by: "ei".into(),
                best: Some(1.0),
                duration_us: 30,
            },
            Event::Jitter {
                dim: 8,
                jitter: 1e-8,
                attempts: 3,
                recovered: true,
            },
            Event::LineSearch { iteration: 4 },
            Event::Upload {
                accepted: 5,
                rejected: 1,
                contributor: "alice".into(),
                batch: 1,
                duration_us: 7,
            },
        ];
        let r = summarize("j.jsonl", &events);
        assert_eq!(r.events_total, 6);
        assert_eq!(r.iterations, 2);
        assert_eq!(r.failures, 1);
        assert_eq!(r.best, Some(1.0));
        assert_eq!(r.jitter_escalations, 1);
        assert_eq!(r.linesearch_failures, 1);
        assert_eq!(r.uploads_accepted, 5);
        assert_eq!(r.uploads_rejected, 1);
        let it = &r.stages["iteration"];
        assert_eq!(it.count, 2);
        assert_eq!(it.total_us, 40);
        assert_eq!(it.max_us, 30);
        let rendered = render_report(&r);
        assert!(rendered.contains("jitter escalations"));
        assert!(rendered.contains("iteration"));
    }

    #[test]
    fn profile_events_merge_into_collapsed_stacks() {
        let mut a = BTreeMap::new();
        a.insert("tune".to_string(), 100u64);
        a.insert("tune;propose".to_string(), 60);
        a.insert("tune;propose;gp_fit".to_string(), 40);
        let mut b = BTreeMap::new();
        b.insert("tune;propose".to_string(), 10u64);
        b.insert("tune;eval".to_string(), 25);
        let events = vec![Event::Profile { folded: a }, Event::Profile { folded: b }];
        let r = summarize("p.jsonl", &events);
        assert_eq!(r.profile["tune;propose"], 70, "same paths must merge");
        assert_eq!(r.profile["tune;eval"], 25);
        assert_eq!(profile_depth(&r), 3);
        let folded = render_profile(&r);
        assert!(folded.contains("tune;propose;gp_fit 40\n"));
        // Every line is `path value`, flamegraph-compatible.
        for line in folded.lines() {
            let (path, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(!path.is_empty());
            value.parse::<u64>().expect("numeric value");
        }
    }

    #[test]
    fn fault_tolerance_events_are_rolled_up() {
        let events = vec![
            Event::Retry {
                iter: 3,
                attempt: 1,
                backoff_s: 1.0,
                error: "transient: node failure".into(),
            },
            Event::Retry {
                iter: 3,
                attempt: 2,
                backoff_s: 2.0,
                error: "transient: node failure".into(),
            },
            Event::FaultInject {
                index: 9,
                kind: "transient".into(),
                detail: "simulated node failure".into(),
                doc: 0,
            },
            Event::FaultInject {
                index: 11,
                kind: "noise".into(),
                detail: "flaky episode x4.0".into(),
                doc: 42,
            },
            Event::Checkpoint {
                iter: 5,
                bytes: 2048,
                key: "ckpt/run".into(),
            },
            Event::Recovery {
                source: "wal".into(),
                docs: 12,
                records: 4,
                torn: true,
                resumed_iter: None,
            },
            Event::Recovery {
                source: "checkpoint".into(),
                docs: 5,
                records: 0,
                torn: false,
                resumed_iter: Some(5),
            },
        ];
        let r = summarize("f.jsonl", &events);
        assert_eq!(r.retries, 2);
        assert_eq!(r.faults_injected["transient"], 1);
        assert_eq!(r.faults_injected["noise"], 1);
        assert_eq!(r.checkpoints, 1);
        assert_eq!(r.recoveries, 2);
        assert_eq!(r.torn_recoveries, 1);
        let rendered = render_report(&r);
        assert!(rendered.contains("fault tolerance"));
        assert!(rendered.contains("faults injected"));
        assert!(rendered.contains("torn-tail recoveries"));
    }

    #[test]
    fn quality_events_roll_up_per_contributor() {
        let events = vec![
            Event::Upload {
                accepted: 3,
                rejected: 0,
                contributor: "mallory".into(),
                batch: 1,
                duration_us: 5,
            },
            Event::QualityScore {
                iter: 4,
                doc: 7,
                contributor: "mallory".into(),
                residual: Some(9.0),
                score: Some(12.5),
                flagged: true,
                duplicate: false,
            },
            Event::QualityScore {
                iter: 5,
                doc: 8,
                contributor: "alice".into(),
                residual: Some(0.2),
                score: Some(0.4),
                flagged: false,
                duplicate: false,
            },
            Event::Quarantine {
                iter: 4,
                doc: 7,
                contributor: "mallory".into(),
                reason: "outlier".into(),
                state: "flagged".into(),
            },
            Event::Calibration {
                model: "gp".into(),
                points: 20,
                coverage90: Some(0.85),
                nll_pp: Some(1.3),
                drift: Some(0.1),
                best: Some(0.01),
            },
        ];
        let r = summarize("q.jsonl", &events);
        assert_eq!(r.quality_scored, 2);
        assert_eq!(r.quality_flagged, 1);
        assert_eq!(r.quarantined, 1);
        assert_eq!(r.calibration_points, 20);
        assert_eq!(r.coverage90, Some(0.85));
        let m = &r.contributors["mallory"];
        assert_eq!(m.uploads, 3);
        assert_eq!(m.flagged, 1);
        assert_eq!(m.quarantined, 1);
        assert_eq!(m.worst_score, Some(12.5));
        assert_eq!(r.contributors["alice"].flagged, 0);
        let (worst, _) = worst_contributor(&r).expect("has flagged contributor");
        assert_eq!(worst, "mallory");
        let rendered = render_quality(&r);
        assert!(rendered.contains("data quality"));
        assert!(rendered.contains("mallory"));
        assert!(rendered.contains("coverage@90"));
        assert!(render_report(&r).contains("data quality"));
    }

    #[test]
    fn sensitivity_events_are_rolled_up() {
        let events = vec![
            Event::Saltelli {
                dim: 3,
                n: 64,
                total_evals: 320,
                scheme: "sobol".into(),
                duration_us: 120,
            },
            Event::Sobol {
                dim: 3,
                n: 64,
                bootstrap: 100,
                variance: Some(2.5),
                duration_us: 450,
            },
            Event::SpaceReduce {
                full_dim: 3,
                kept: 2,
                fixed: 1,
            },
        ];
        let r = summarize("s.jsonl", &events);
        assert_eq!(r.saltelli_evals, 320);
        assert_eq!(r.sobol_estimates, 1);
        assert_eq!(r.space_reductions, 1);
        assert_eq!(r.stages["saltelli"].count, 1);
        assert_eq!(r.stages["sobol"].total_us, 450);
        assert!(render_report(&r).contains("saltelli evals"));
    }
}
