//! Per-run, per-thread accumulation of span times and named counts.
//!
//! A *scope* is opened by the tuning loop on its own thread before a run and
//! closed after it; every span closed and every [`scope_count`] issued on
//! that thread in between is accumulated into the returned [`ScopeStats`].
//! This is how `TuneResult::stats` is populated without consulting the
//! process-global metrics (which would mix concurrent runs together — the
//! bench runner executes seeds in parallel, one per rayon worker thread).
//!
//! Scopes are thread-local and non-nesting: opening a new scope replaces an
//! unclosed one. Work a strategy fans out to rayon workers is still captured
//! as long as the *enclosing* span closes on the run's own thread (which is
//! how `Gp::fit`/`Lcm::fit` wrap their parallel multistarts).

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Span times and named counts accumulated while a scope was open.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeStats {
    /// Total nanoseconds per span name.
    pub time_ns: BTreeMap<&'static str, u64>,
    /// Number of occurrences per name (span closes and explicit counts).
    pub counts: BTreeMap<&'static str, u64>,
    /// Total nanoseconds per folded span stack (`outer;inner;leaf`) — the
    /// collapsed-stack profile of the run, flamegraph-compatible. Only spans
    /// closed on the scope's thread contribute (same rule as `time_ns`).
    pub stack_ns: BTreeMap<String, u64>,
}

impl ScopeStats {
    /// Total nanoseconds recorded under `name` (0 if absent).
    pub fn time_ns_of(&self, name: &str) -> u64 {
        self.time_ns.get(name).copied().unwrap_or(0)
    }

    /// Occurrences recorded under `name` (0 if absent).
    pub fn count_of(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }
}

thread_local! {
    static ACTIVE: RefCell<Option<ScopeStats>> = const { RefCell::new(None) };
}

/// Opens a fresh scope on the current thread, replacing any unclosed one.
pub fn scope_begin() {
    ACTIVE.with(|a| *a.borrow_mut() = Some(ScopeStats::default()));
}

/// Closes the current thread's scope and returns what it accumulated, or
/// `None` if no scope was open.
pub fn scope_end() -> Option<ScopeStats> {
    ACTIVE.with(|a| a.borrow_mut().take())
}

/// Whether a scope is open on the current thread. Span guards consult this
/// before allocating a folded stack path, so threads outside a run (rayon
/// workers, bench drivers) pay nothing for the profiler.
pub fn scope_active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Adds `n` occurrences of `name` to the active scope (no-op without one).
pub fn scope_count(name: &'static str, n: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            *s.counts.entry(name).or_insert(0) += n;
        }
    });
}

/// Credits `ns` nanoseconds (and one occurrence) of `name` to the active
/// scope. Called by [`crate::span::SpanGuard`] on drop.
pub(crate) fn scope_time(name: &'static str, ns: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            *s.time_ns.entry(name).or_insert(0) += ns;
            *s.counts.entry(name).or_insert(0) += 1;
        }
    });
}

/// Credits `ns` nanoseconds to the folded stack `path` in the active scope.
/// Called by [`crate::span::SpanGuard`] on drop when a scope is open.
pub(crate) fn scope_time_stack(path: String, ns: u64) {
    ACTIVE.with(|a| {
        if let Some(s) = a.borrow_mut().as_mut() {
            *s.stack_ns.entry(path).or_insert(0) += ns;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_accumulates_counts_and_times() {
        scope_begin();
        scope_count("widgets", 2);
        scope_count("widgets", 3);
        scope_time("stage", 100);
        scope_time("stage", 50);
        let stats = scope_end().expect("scope open");
        assert_eq!(stats.count_of("widgets"), 5);
        assert_eq!(stats.time_ns_of("stage"), 150);
        assert_eq!(stats.count_of("stage"), 2);
        assert!(scope_end().is_none());
    }

    #[test]
    fn counts_without_scope_are_dropped() {
        assert!(scope_end().is_none());
        scope_count("orphan", 1);
        scope_begin();
        let stats = scope_end().unwrap();
        assert_eq!(stats.count_of("orphan"), 0);
    }
}
