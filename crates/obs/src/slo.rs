//! Declarative service-level objectives evaluated over trace journals.
//!
//! An [`SloFile`] (JSON on disk) declares objectives against the crowd
//! service: latency quantile bounds per op kind (optionally per stage),
//! error-rate ceilings over counter pairs, and must-stay-zero counters
//! (e.g. `db.cache_stale_serves` for "query staleness = 0").
//!
//! Latency objectives are evaluated over *sliding windows* of trace time
//! with multi-window burn rates, following the standard SRE recipe: the
//! burn rate of a window is `bad_fraction / error_budget` where the error
//! budget of a q-quantile objective is `1 - q` (a p99 objective tolerates
//! 1% slow requests; burning at exactly budget is burn rate 1.0). An
//! objective is **breached** only when every configured window (fast and
//! slow) that has samples burns above the threshold — the fast window
//! makes the signal responsive, the slow window keeps one latency spike
//! from paging. Counter objectives are point-in-time over a
//! [`MetricsSnapshot`].

use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::metrics::MetricsSnapshot;
use crate::trace::{OpKind, TraceRecord, TraceStage};

/// Sliding-window lengths for burn-rate evaluation, microseconds of
/// trace time, anchored at the newest record in the journal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloWindows {
    /// Fast window (responsiveness), e.g. 2_000_000 µs.
    pub fast_us: u64,
    /// Slow window (stability), e.g. 20_000_000 µs. Must be ≥ fast.
    pub slow_us: u64,
}

/// One declarative objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "lowercase")]
pub enum SloObjective {
    /// Latency quantile bound: the q-quantile of `stage` durations for
    /// `op` must stay under `max_us`, burn-rate evaluated per window.
    Latency {
        /// Objective name, used in reports and metric labels.
        name: String,
        /// Op kind name (`upload`, `query`, ...) as in [`OpKind::as_str`].
        op: String,
        /// Stage name as in [`TraceStage::as_str`]; defaults to `op`
        /// (the end-to-end stage) when omitted.
        stage: Option<String>,
        /// Quantile in (0, 1), e.g. 0.99.
        q: f64,
        /// Duration bound in microseconds.
        max_us: f64,
    },
    /// Error-rate ceiling: `bad / total` counters must stay ≤ `max`.
    Error {
        /// Objective name.
        name: String,
        /// Counter holding the failure count.
        bad: String,
        /// Counter holding the attempt count.
        total: String,
        /// Maximum tolerated failure fraction in [0, 1].
        max: f64,
    },
    /// Must-stay-zero counter (e.g. stale cache serves).
    Zero {
        /// Objective name.
        name: String,
        /// Counter that must read zero.
        counter: String,
    },
    /// Data-quality ratio objective over a counter pair. With no
    /// `target` the observed value is the raw ratio `bad / total`
    /// (e.g. outlier rate from `quality.outliers_flagged` over
    /// `quality.uploads_scored`). With a `target` the observed value is
    /// the absolute deviation `|bad / total - target|` (e.g. coverage
    /// error against 0.90 from `calibration.points_inside90` over
    /// `calibration.points_scored`). Breaches when observed > `max`.
    Quality {
        /// Objective name.
        name: String,
        /// Counter holding the numerator (flagged / inside-interval).
        bad: String,
        /// Counter holding the denominator (scored points).
        total: String,
        /// Optional target ratio; when set, the objective bounds the
        /// deviation from it rather than the ratio itself.
        target: Option<f64>,
        /// Maximum tolerated observed value in [0, 1].
        max: f64,
    },
}

impl SloObjective {
    /// The objective's display name.
    pub fn name(&self) -> &str {
        match self {
            SloObjective::Latency { name, .. }
            | SloObjective::Error { name, .. }
            | SloObjective::Zero { name, .. }
            | SloObjective::Quality { name, .. } => name,
        }
    }
}

/// A parsed SLO spec file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloFile {
    /// Burn-rate windows shared by all latency objectives.
    pub windows: SloWindows,
    /// Burn-rate threshold; breach requires every window to exceed it.
    /// Defaults to 1.0 (burning exactly the error budget).
    pub burn_threshold: Option<f64>,
    /// The objectives to evaluate.
    pub objectives: Vec<SloObjective>,
}

/// Burn-rate evaluation of one window of one objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WindowBurn {
    /// Window length in µs (0 for point-in-time counter objectives).
    pub window_us: u64,
    /// Samples that fell inside the window.
    pub samples: u64,
    /// Samples that violated the objective bound.
    pub bad: u64,
    /// `bad_fraction / error_budget`; `bad_fraction` for counter
    /// objectives (budget 1).
    pub burn: f64,
    /// Observed value: the q-quantile latency in µs for latency
    /// objectives, the counter/ratio value otherwise.
    pub observed: f64,
}

/// Evaluation outcome of one objective.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloOutcome {
    /// Objective name.
    pub name: String,
    /// Objective kind (`latency`, `error`, `zero`).
    pub kind: String,
    /// Whether every populated window burned above threshold.
    pub breached: bool,
    /// Human-readable bound description.
    pub detail: String,
    /// Per-window burn rates (one `window_us: 0` entry for counters).
    pub windows: Vec<WindowBurn>,
}

/// Full evaluation of an [`SloFile`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloReport {
    /// Burn threshold the breach decisions used.
    pub burn_threshold: f64,
    /// One outcome per objective, in file order.
    pub outcomes: Vec<SloOutcome>,
}

impl SloReport {
    /// Whether any objective breached.
    pub fn any_breached(&self) -> bool {
        self.outcomes.iter().any(|o| o.breached)
    }
}

/// Exact order-statistic quantile with linear interpolation over an
/// unsorted slice of durations (ns). Returns 0 for an empty slice.
fn quantile_ns(values: &mut [u64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_unstable();
    let rank = q.clamp(0.0, 1.0) * (values.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        values[lo] as f64
    } else {
        let frac = rank - lo as f64;
        values[lo] as f64 * (1.0 - frac) + values[hi] as f64 * frac
    }
}

/// The fields of one `latency` objective, borrowed out of the enum
/// variant for evaluation.
struct LatencySpec<'a> {
    name: &'a str,
    op: &'a str,
    stage: Option<&'a str>,
    q: f64,
    max_us: f64,
}

fn latency_outcome(
    spec: &LatencySpec<'_>,
    windows: &SloWindows,
    threshold: f64,
    traces: &[TraceRecord],
) -> SloOutcome {
    let LatencySpec {
        name,
        op,
        stage,
        q,
        max_us,
    } = *spec;
    let stage_name = stage.unwrap_or("op");
    let want_op = OpKind::parse(op);
    let want_stage = TraceStage::parse(stage_name);
    // (end_ns, dur_ns) for every matching record.
    let samples: Vec<(u64, u64)> = traces
        .iter()
        .filter(|r| Some(r.op) == want_op && Some(r.stage) == want_stage)
        .map(|r| (r.start_ns + r.dur_ns, r.dur_ns))
        .collect();
    let anchor_ns = samples.iter().map(|(end, _)| *end).max().unwrap_or(0);
    let budget = (1.0 - q).max(1e-9);
    let mut burns = Vec::new();
    for window_us in [windows.fast_us, windows.slow_us] {
        let window_ns = window_us.saturating_mul(1000);
        let cutoff = anchor_ns.saturating_sub(window_ns);
        let mut durs: Vec<u64> = samples
            .iter()
            .filter(|(end, _)| *end >= cutoff)
            .map(|(_, d)| *d)
            .collect();
        let bad = durs.iter().filter(|d| **d as f64 / 1000.0 > max_us).count() as u64;
        let n = durs.len() as u64;
        let bad_frac = if n == 0 { 0.0 } else { bad as f64 / n as f64 };
        burns.push(WindowBurn {
            window_us,
            samples: n,
            bad,
            burn: bad_frac / budget,
            observed: quantile_ns(&mut durs, q) / 1000.0,
        });
    }
    // Breach only when every window that saw traffic burns hot; an
    // objective with no samples anywhere does not breach.
    let populated: Vec<&WindowBurn> = burns.iter().filter(|w| w.samples > 0).collect();
    let breached = !populated.is_empty() && populated.iter().all(|w| w.burn > threshold);
    SloOutcome {
        name: name.to_string(),
        kind: "latency".to_string(),
        breached,
        detail: format!("{op}/{stage_name} p{:.4} <= {max_us} us", q * 100.0),
        windows: burns,
    }
}

fn counter(snapshot: Option<&MetricsSnapshot>, name: &str) -> u64 {
    snapshot
        .and_then(|s| s.counters.get(name).copied())
        .unwrap_or(0)
}

/// Evaluate an SLO spec against a trace journal and (optionally) a
/// metrics snapshot for the counter-based objectives.
pub fn evaluate_slos(
    file: &SloFile,
    traces: &[TraceRecord],
    snapshot: Option<&MetricsSnapshot>,
) -> SloReport {
    let threshold = file.burn_threshold.unwrap_or(1.0);
    let outcomes = file
        .objectives
        .iter()
        .map(|obj| match obj {
            SloObjective::Latency {
                name,
                op,
                stage,
                q,
                max_us,
            } => latency_outcome(
                &LatencySpec {
                    name,
                    op,
                    stage: stage.as_deref(),
                    q: *q,
                    max_us: *max_us,
                },
                &file.windows,
                threshold,
                traces,
            ),
            SloObjective::Error {
                name,
                bad,
                total,
                max,
            } => {
                let bad_n = counter(snapshot, bad);
                let total_n = counter(snapshot, total);
                let frac = if total_n == 0 {
                    0.0
                } else {
                    bad_n as f64 / total_n as f64
                };
                SloOutcome {
                    name: name.clone(),
                    kind: "error".to_string(),
                    breached: frac > *max,
                    detail: format!("{bad} / {total} <= {max}"),
                    windows: vec![WindowBurn {
                        window_us: 0,
                        samples: total_n,
                        bad: bad_n,
                        burn: if *max > 0.0 { frac / *max } else { frac },
                        observed: frac,
                    }],
                }
            }
            SloObjective::Quality {
                name,
                bad,
                total,
                target,
                max,
            } => {
                let bad_n = counter(snapshot, bad);
                let total_n = counter(snapshot, total);
                let ratio = if total_n == 0 {
                    // No scored points: observe the target itself (zero
                    // deviation) so an idle run never breaches.
                    target.unwrap_or(0.0)
                } else {
                    bad_n as f64 / total_n as f64
                };
                let observed = match target {
                    Some(t) => (ratio - t).abs(),
                    None => ratio,
                };
                let detail = match target {
                    Some(t) => format!("|{bad} / {total} - {t}| <= {max}"),
                    None => format!("{bad} / {total} <= {max}"),
                };
                SloOutcome {
                    name: name.clone(),
                    kind: "quality".to_string(),
                    breached: observed > *max,
                    detail,
                    windows: vec![WindowBurn {
                        window_us: 0,
                        samples: total_n,
                        bad: bad_n,
                        burn: if *max > 0.0 {
                            observed / *max
                        } else {
                            observed
                        },
                        observed,
                    }],
                }
            }
            SloObjective::Zero { name, counter: c } => {
                let v = counter(snapshot, c);
                SloOutcome {
                    name: name.clone(),
                    kind: "zero".to_string(),
                    breached: v != 0,
                    detail: format!("{c} == 0"),
                    windows: vec![WindowBurn {
                        window_us: 0,
                        samples: v,
                        bad: v,
                        burn: v as f64,
                        observed: v as f64,
                    }],
                }
            }
        })
        .collect();
    SloReport {
        burn_threshold: threshold,
        outcomes,
    }
}

/// Parse an SLO spec file (JSON).
pub fn parse_slo_file(path: impl AsRef<Path>) -> Result<SloFile, String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("read {}: {e}", path.as_ref().display()))?;
    let value = serde_json::parse(&text).map_err(|e| format!("invalid JSON: {e}"))?;
    SloFile::from_value(&value).map_err(|e| format!("invalid SLO spec: {e}"))
}

/// Render an [`SloReport`] as a human-readable text section.
pub fn render_slo_report(report: &SloReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "SLO report (burn threshold {:.2})\n",
        report.burn_threshold
    ));
    for o in &report.outcomes {
        let status = if o.breached { "BREACH" } else { "ok" };
        out.push_str(&format!("  [{status:>6}] {} — {}\n", o.name, o.detail));
        for w in &o.windows {
            if w.window_us == 0 {
                out.push_str(&format!(
                    "           point-in-time: observed {:.4} (bad {} / {})\n",
                    w.observed, w.bad, w.samples
                ));
            } else {
                out.push_str(&format!(
                    "           window {:>9} us: {} samples, {} bad, burn {:.3}, observed {:.1} us\n",
                    w.window_us, w.samples, w.bad, w.burn, w.observed
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(op: OpKind, stage: TraceStage, start_us: u64, dur_us: u64) -> TraceRecord {
        TraceRecord {
            trace: 1,
            client: 0,
            op,
            stage,
            shard: 0,
            start_ns: start_us * 1000,
            dur_ns: dur_us * 1000,
            link: 0,
        }
    }

    fn latency_file(q: f64, max_us: f64) -> SloFile {
        SloFile {
            windows: SloWindows {
                fast_us: 1_000,
                slow_us: 1_000_000,
            },
            burn_threshold: None,
            objectives: vec![SloObjective::Latency {
                name: "upload-p99".to_string(),
                op: "upload".to_string(),
                stage: None,
                q,
                max_us,
            }],
        }
    }

    #[test]
    fn healthy_traffic_does_not_breach() {
        let traces: Vec<TraceRecord> = (0..100)
            .map(|i| rec(OpKind::Upload, TraceStage::Op, i * 10, 50))
            .collect();
        let report = evaluate_slos(&latency_file(0.99, 100.0), &traces, None);
        assert!(!report.any_breached());
        assert_eq!(report.outcomes[0].windows.len(), 2);
        assert!(report.outcomes[0].windows[1].observed <= 100.0);
    }

    #[test]
    fn sustained_slowness_breaches_all_windows() {
        // Every request blows the 100 µs bound in both windows: burn
        // rate 1/0.01 = 100 ≫ 1.
        let traces: Vec<TraceRecord> = (0..100)
            .map(|i| rec(OpKind::Upload, TraceStage::Op, i * 10, 500))
            .collect();
        let report = evaluate_slos(&latency_file(0.99, 100.0), &traces, None);
        assert!(report.any_breached());
        for w in &report.outcomes[0].windows {
            assert!(w.burn > 1.0);
        }
    }

    #[test]
    fn old_spike_outside_fast_window_does_not_breach() {
        // A burst of slow requests long ago, healthy traffic since: the
        // slow window still burns, but the fast window is clean, so the
        // multi-window rule holds the alarm.
        let mut traces: Vec<TraceRecord> = (0..50)
            .map(|i| rec(OpKind::Upload, TraceStage::Op, i, 500))
            .collect();
        traces.extend((0..50).map(|i| rec(OpKind::Upload, TraceStage::Op, 10_000 + i * 10, 50)));
        let report = evaluate_slos(&latency_file(0.99, 100.0), &traces, None);
        assert!(!report.any_breached());
        let windows = &report.outcomes[0].windows;
        assert!(windows[0].burn <= 1.0, "fast window clean");
        assert!(windows[1].burn > 1.0, "slow window saw the spike");
    }

    #[test]
    fn counter_objectives_use_snapshot() {
        let mut snap = MetricsSnapshot {
            counters: Default::default(),
            histograms: Default::default(),
        };
        snap.counters.insert("db.cache_stale_serves".to_string(), 0);
        snap.counters
            .insert("db.wal_torn_recoveries".to_string(), 3);
        snap.counters.insert("db.wal_appends".to_string(), 10);
        let file = SloFile {
            windows: SloWindows {
                fast_us: 1,
                slow_us: 2,
            },
            burn_threshold: Some(1.0),
            objectives: vec![
                SloObjective::Zero {
                    name: "no-stale".to_string(),
                    counter: "db.cache_stale_serves".to_string(),
                },
                SloObjective::Error {
                    name: "torn-rate".to_string(),
                    bad: "db.wal_torn_recoveries".to_string(),
                    total: "db.wal_appends".to_string(),
                    max: 0.01,
                },
            ],
        };
        let report = evaluate_slos(&file, &[], Some(&snap));
        assert!(!report.outcomes[0].breached);
        assert!(report.outcomes[1].breached);
        assert!((report.outcomes[1].windows[0].observed - 0.3).abs() < 1e-12);
    }

    #[test]
    fn quality_objectives_bound_rates_and_target_deviation() {
        let mut snap = MetricsSnapshot {
            counters: Default::default(),
            histograms: Default::default(),
        };
        snap.counters
            .insert("quality.outliers_flagged".to_string(), 8);
        snap.counters
            .insert("quality.uploads_scored".to_string(), 100);
        snap.counters
            .insert("calibration.points_inside90".to_string(), 70);
        snap.counters
            .insert("calibration.points_scored".to_string(), 100);
        let file = SloFile {
            windows: SloWindows {
                fast_us: 1,
                slow_us: 2,
            },
            burn_threshold: Some(1.0),
            objectives: vec![
                SloObjective::Quality {
                    name: "outlier-rate".to_string(),
                    bad: "quality.outliers_flagged".to_string(),
                    total: "quality.uploads_scored".to_string(),
                    target: None,
                    max: 0.05,
                },
                SloObjective::Quality {
                    name: "coverage-error".to_string(),
                    bad: "calibration.points_inside90".to_string(),
                    total: "calibration.points_scored".to_string(),
                    target: Some(0.90),
                    max: 0.25,
                },
                SloObjective::Quality {
                    name: "idle-no-breach".to_string(),
                    bad: "quality.outliers_flagged".to_string(),
                    total: "nonexistent.counter".to_string(),
                    target: Some(0.90),
                    max: 0.01,
                },
            ],
        };
        let report = evaluate_slos(&file, &[], Some(&snap));
        // 8% outlier rate over a 5% ceiling: breach.
        assert!(report.outcomes[0].breached);
        assert!((report.outcomes[0].windows[0].observed - 0.08).abs() < 1e-12);
        // Coverage 0.70 vs target 0.90 → deviation 0.20 ≤ 0.25: ok.
        assert!(!report.outcomes[1].breached);
        assert!((report.outcomes[1].windows[0].observed - 0.20).abs() < 1e-12);
        // No scored points: never breaches.
        assert!(!report.outcomes[2].breached);
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let file = latency_file(0.99, 123.0);
        let text = serde_json::to_string(&file.to_value()).unwrap();
        let back = SloFile::from_value(&serde_json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, file);
        let report = evaluate_slos(&back, &[], None);
        assert!(!report.any_breached(), "no samples → no breach");
        assert!(!render_slo_report(&report).is_empty());
    }
}
