//! Lightweight wall-clock spans with parent nesting.
//!
//! A span is an RAII guard: [`span`] pushes the name onto a thread-local
//! stack and starts an [`Instant`]; dropping the guard pops the stack and
//! records the elapsed nanoseconds into the histogram of the same name
//! (when metrics are enabled) and into the active per-run scope on this
//! thread (when one is open — see [`crate::scope`]). Spans never allocate
//! and never touch the journal, so they are safe around hot sections.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`span`]; records timing when dropped.
#[must_use = "a span measures nothing unless it is held until the region ends"]
pub struct SpanGuard {
    name: &'static str,
    parent: Option<&'static str>,
    start: Instant,
}

/// Opens a span named `name`, nested under the current thread's innermost
/// open span (if any).
pub fn span(name: &'static str) -> SpanGuard {
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().copied();
        s.push(name);
        parent
    });
    SpanGuard {
        name,
        parent,
        start: Instant::now(),
    }
}

/// Name of the current thread's innermost open span, if any.
pub fn current_span() -> Option<&'static str> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

impl SpanGuard {
    /// The span's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Name of the span this one was opened under, if any.
    pub fn parent(&self) -> Option<&'static str> {
        self.parent
    }

    /// Nanoseconds elapsed since the span was opened.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let ns = self.elapsed_ns();
        let folded = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards normally close LIFO; remove the last matching entry so
            // an out-of-order drop cannot corrupt unrelated frames.
            if let Some(pos) = s.iter().rposition(|n| *n == self.name) {
                // Join the stack up to this frame into a folded path for
                // the per-run profile — only when a scope is open, so
                // profiling costs nothing outside a run.
                let folded = if crate::scope::scope_active() {
                    Some(s[..=pos].join(";"))
                } else {
                    None
                };
                s.remove(pos);
                folded
            } else {
                None
            }
        });
        if let Some(path) = folded {
            crate::scope::scope_time_stack(path, ns);
        }
        crate::scope::scope_time(self.name, ns);
        crate::metrics::observe(self.name, ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind() {
        assert_eq!(current_span(), None);
        let outer = span("outer");
        assert_eq!(outer.parent(), None);
        assert_eq!(current_span(), Some("outer"));
        {
            let inner = span("inner");
            assert_eq!(inner.parent(), Some("outer"));
            assert_eq!(current_span(), Some("inner"));
        }
        assert_eq!(current_span(), Some("outer"));
        drop(outer);
        assert_eq!(current_span(), None);
    }

    #[test]
    fn nested_spans_fold_into_scope_stacks() {
        crate::scope::scope_begin();
        {
            let _root = span("root_f");
            {
                let _mid = span("mid_f");
                let _leaf = span("leaf_f");
            }
        }
        let stats = crate::scope::scope_end().expect("scope was open");
        assert!(stats.stack_ns.contains_key("root_f"));
        assert!(stats.stack_ns.contains_key("root_f;mid_f"));
        assert!(stats.stack_ns.contains_key("root_f;mid_f;leaf_f"));
    }

    #[test]
    fn span_feeds_active_scope() {
        crate::scope::scope_begin();
        {
            let _g = span("scoped_work");
        }
        let stats = crate::scope::scope_end().expect("scope was open");
        assert_eq!(stats.count_of("scoped_work"), 1);
    }
}
