//! Request-scoped tracing: per-stage timings in lock-free per-thread rings.
//!
//! Every `CrowdService` operation carries a [`RequestCtx`] (trace id, client
//! id, op kind) from the repository facade down through shard acquisition,
//! the group-commit WAL, and the query cache. Each stage records one
//! [`TraceRecord`] with monotonic start/duration nanoseconds into an
//! always-on, lock-free ring buffer: one fixed-capacity ring per thread,
//! drop-oldest on overflow, with dropped records counted rather than
//! silently lost. Records may carry a *causal link* — a follower's
//! durability-wait stage references the leader trace whose fsync made its
//! record durable.
//!
//! The disabled path is a single relaxed atomic load: [`RequestCtx::new`]
//! returns an inactive context (trace id 0) and every later hook is a
//! no-op, preserving the <2% disabled-overhead budget. Tracing records only
//! timestamps — it never consumes RNG state or changes arithmetic order —
//! so tuner results are bitwise identical with tracing on or off.
//!
//! Ring slots use a seqlock: the owning thread bumps the slot sequence to
//! an odd value, writes the fields, then bumps it even; [`drain_traces`]
//! (a single collector) validates the sequence before and after reading and
//! skips torn slots, counting them as dropped.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::RwLock;
use serde::{DeError, Deserialize, Serialize, Value};

/// Which service operation a trace belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OpKind {
    /// An evaluation upload (`CrowdService::insert`).
    Upload,
    /// A cached shard query.
    Query,
    /// An owner-scoped delete.
    Delete,
    /// A blob append.
    Blob,
    /// A WAL compaction.
    Compact,
}

impl OpKind {
    /// Stable lowercase name used in journals and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            OpKind::Upload => "upload",
            OpKind::Query => "query",
            OpKind::Delete => "delete",
            OpKind::Blob => "blob",
            OpKind::Compact => "compact",
        }
    }

    /// Parse the stable name back into an [`OpKind`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "upload" => OpKind::Upload,
            "query" => OpKind::Query,
            "delete" => OpKind::Delete,
            "blob" => OpKind::Blob,
            "compact" => OpKind::Compact,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            OpKind::Upload => 0,
            OpKind::Query => 1,
            OpKind::Delete => 2,
            OpKind::Blob => 3,
            OpKind::Compact => 4,
        }
    }

    fn from_u8(b: u8) -> Self {
        match b {
            0 => OpKind::Upload,
            1 => OpKind::Query,
            2 => OpKind::Delete,
            3 => OpKind::Blob,
            _ => OpKind::Compact,
        }
    }
}

impl Serialize for OpKind {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for OpKind {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => {
                OpKind::parse(s).ok_or_else(|| DeError::new(format!("unknown op kind `{s}`")))
            }
            _ => Err(DeError::new("expected string op kind")),
        }
    }
}

/// One timed stage within a traced operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TraceStage {
    /// The whole operation, end to end. Every trace has exactly one.
    Op,
    /// Waiting for the per-shard write mutex.
    ShardLockWait,
    /// Applying the mutation to the in-memory shard store.
    MemApply,
    /// Framing + buffering the record into the WAL group buffer.
    WalEnqueue,
    /// A group-commit leader's write + fsync of the drained buffer.
    WalFsync,
    /// A follower waiting for a leader's fsync to cover its ticket.
    /// `link` names the leader trace that performed the covering fsync.
    WalFollowerWait,
    /// Query-cache probe: epoch check plus, on a hit, the `Arc` clone.
    CacheCheck,
    /// A full shard scan on a cache miss (or with the cache disabled).
    Scan,
    /// Snapshot + WAL truncation during compaction.
    Compact,
    /// The overload-controller admission decision (queue-depth check,
    /// deadline check, health gate) taken before any state is touched.
    Admission,
    /// A degraded shard answering a read from an epoch-stamped stale
    /// cache entry instead of scanning.
    StaleServe,
}

impl TraceStage {
    /// Stable lowercase name used in journals and reports.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceStage::Op => "op",
            TraceStage::ShardLockWait => "shard_lock_wait",
            TraceStage::MemApply => "mem_apply",
            TraceStage::WalEnqueue => "wal_enqueue",
            TraceStage::WalFsync => "wal_fsync",
            TraceStage::WalFollowerWait => "wal_follower_wait",
            TraceStage::CacheCheck => "cache_check",
            TraceStage::Scan => "scan",
            TraceStage::Compact => "compact",
            TraceStage::Admission => "admission",
            TraceStage::StaleServe => "stale_serve",
        }
    }

    /// Parse the stable name back into a [`TraceStage`].
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "op" => TraceStage::Op,
            "shard_lock_wait" => TraceStage::ShardLockWait,
            "mem_apply" => TraceStage::MemApply,
            "wal_enqueue" => TraceStage::WalEnqueue,
            "wal_fsync" => TraceStage::WalFsync,
            "wal_follower_wait" => TraceStage::WalFollowerWait,
            "cache_check" => TraceStage::CacheCheck,
            "scan" => TraceStage::Scan,
            "compact" => TraceStage::Compact,
            "admission" => TraceStage::Admission,
            "stale_serve" => TraceStage::StaleServe,
            _ => return None,
        })
    }

    fn as_u8(self) -> u8 {
        match self {
            TraceStage::Op => 0,
            TraceStage::ShardLockWait => 1,
            TraceStage::MemApply => 2,
            TraceStage::WalEnqueue => 3,
            TraceStage::WalFsync => 4,
            TraceStage::WalFollowerWait => 5,
            TraceStage::CacheCheck => 6,
            TraceStage::Scan => 7,
            TraceStage::Compact => 8,
            TraceStage::Admission => 9,
            TraceStage::StaleServe => 10,
        }
    }

    fn from_u8(b: u8) -> Self {
        match b {
            0 => TraceStage::Op,
            1 => TraceStage::ShardLockWait,
            2 => TraceStage::MemApply,
            3 => TraceStage::WalEnqueue,
            4 => TraceStage::WalFsync,
            5 => TraceStage::WalFollowerWait,
            6 => TraceStage::CacheCheck,
            7 => TraceStage::Scan,
            8 => TraceStage::Compact,
            9 => TraceStage::Admission,
            _ => TraceStage::StaleServe,
        }
    }
}

impl Serialize for TraceStage {
    fn to_value(&self) -> Value {
        Value::Str(self.as_str().to_string())
    }
}

impl Deserialize for TraceStage {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => {
                TraceStage::parse(s).ok_or_else(|| DeError::new(format!("unknown stage `{s}`")))
            }
            _ => Err(DeError::new("expected string trace stage")),
        }
    }
}

/// One timed stage of one traced request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    /// Process-unique trace id (never 0; 0 means "no trace").
    pub trace: u64,
    /// FNV hash of the requesting client identity (0 when unknown).
    pub client: u32,
    /// Operation kind this stage belongs to.
    pub op: OpKind,
    /// Which stage of the operation this record times.
    pub stage: TraceStage,
    /// Shard index the stage ran against (`u16::MAX` = not shard-scoped).
    pub shard: u16,
    /// Monotonic start, nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Stage duration in nanoseconds.
    pub dur_ns: u64,
    /// Causal link: the trace id whose work completed this stage
    /// (a follower's covering leader fsync). 0 = no link.
    #[serde(default)]
    pub link: u64,
}

/// Shard value meaning "this stage is not scoped to a shard".
pub const NO_SHARD: u16 = u16::MAX;

static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
static RING_CAPACITY: AtomicUsize = AtomicUsize::new(4096);
static BASE: OnceLock<Instant> = OnceLock::new();

/// Whether request tracing is currently enabled (one relaxed load).
#[inline]
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Turn request tracing on or off process-wide.
pub fn set_tracing_enabled(enabled: bool) {
    if enabled {
        // Pin the trace epoch before the first record so start_ns is
        // meaningful across threads.
        let _ = BASE.get_or_init(Instant::now);
    }
    TRACING.store(enabled, Ordering::Relaxed);
}

/// Set the per-thread ring capacity (slots). Applies to rings created
/// after the call; existing rings keep their size. Clamped to
/// `[64, 1 << 20]`.
pub fn set_ring_capacity(slots: usize) {
    RING_CAPACITY.store(slots.clamp(64, 1 << 20), Ordering::Relaxed);
}

/// Declarative tracing configuration, so drivers can size the capture
/// ring for their workload instead of hard-coding a capacity and
/// asserting drops never happen.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Per-thread ring capacity in slots (clamped to `[64, 1 << 20]`
    /// when applied). Rings created before [`configure_tracing`] keep
    /// their old size.
    pub ring_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            ring_capacity: 4096,
        }
    }
}

/// Apply a [`TraceConfig`] and enable tracing. Overflowing the ring is
/// not fatal: drops are counted per drain into the
/// `obs.trace_dropped` counter and reported in the journal header, so
/// an undersized ring degrades to partial (but unbiased-at-the-tail)
/// capture rather than aborting the run.
pub fn configure_tracing(config: &TraceConfig) {
    set_ring_capacity(config.ring_capacity);
    set_tracing_enabled(true);
}

/// Monotonic nanoseconds since the process trace epoch.
#[inline]
pub fn now_ns() -> u64 {
    BASE.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

// ---------------------------------------------------------------------------
// Lock-free per-thread ring
// ---------------------------------------------------------------------------

/// One seqlock-protected ring slot. `seq` is even when the slot is stable
/// and odd while the owning thread is writing it. `meta` packs
/// `(op << 56) | (stage << 48) | (shard << 32) | client`.
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    meta: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
    link: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
            link: AtomicU64::new(0),
        }
    }
}

fn pack_meta(op: OpKind, stage: TraceStage, shard: u16, client: u32) -> u64 {
    ((op.as_u8() as u64) << 56)
        | ((stage.as_u8() as u64) << 48)
        | ((shard as u64) << 32)
        | client as u64
}

fn unpack_meta(meta: u64) -> (OpKind, TraceStage, u16, u32) {
    (
        OpKind::from_u8((meta >> 56) as u8),
        TraceStage::from_u8((meta >> 48) as u8),
        (meta >> 32) as u16,
        meta as u32,
    )
}

/// Fixed-capacity drop-oldest ring owned by one writer thread.
struct TraceRing {
    slots: Box<[Slot]>,
    /// Total records ever pushed; the live window is
    /// `[max(taken, head - capacity), head)`.
    head: AtomicU64,
    /// Records already consumed (or skipped) by the collector.
    taken: AtomicU64,
}

impl TraceRing {
    fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            taken: AtomicU64::new(0),
        }
    }

    /// Owner-thread push. Seqlock write: odd seq, fields, even seq, then
    /// publish the new head.
    fn push(&self, rec: &TraceRecord) {
        let head = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(head % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Release);
        slot.trace.store(rec.trace, Ordering::Relaxed);
        slot.meta.store(
            pack_meta(rec.op, rec.stage, rec.shard, rec.client),
            Ordering::Relaxed,
        );
        slot.start_ns.store(rec.start_ns, Ordering::Relaxed);
        slot.dur_ns.store(rec.dur_ns, Ordering::Relaxed);
        slot.link.store(rec.link, Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(head + 1, Ordering::Release);
    }

    /// Collector-side read of one logical index. Returns `None` if the
    /// slot was being rewritten concurrently (torn).
    fn read(&self, index: u64) -> Option<TraceRecord> {
        let slot = &self.slots[(index % self.slots.len() as u64) as usize];
        let seq_before = slot.seq.load(Ordering::Acquire);
        if seq_before & 1 == 1 {
            return None;
        }
        let trace = slot.trace.load(Ordering::Relaxed);
        let meta = slot.meta.load(Ordering::Relaxed);
        let start_ns = slot.start_ns.load(Ordering::Relaxed);
        let dur_ns = slot.dur_ns.load(Ordering::Relaxed);
        let link = slot.link.load(Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.seq.load(Ordering::Relaxed) != seq_before {
            return None;
        }
        let (op, stage, shard, client) = unpack_meta(meta);
        Some(TraceRecord {
            trace,
            client,
            op,
            stage,
            shard,
            start_ns,
            dur_ns,
            link,
        })
    }
}

fn registry() -> &'static RwLock<Vec<Arc<TraceRing>>> {
    static REGISTRY: OnceLock<RwLock<Vec<Arc<TraceRing>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| RwLock::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: Arc<TraceRing> = {
        let ring = Arc::new(TraceRing::new(RING_CAPACITY.load(Ordering::Relaxed)));
        registry().write().push(Arc::clone(&ring));
        ring
    };
}

#[inline]
fn push_record(rec: &TraceRecord) {
    THREAD_RING.with(|ring| ring.push(rec));
}

/// A drained set of trace records plus the number of records lost to
/// ring overflow (or torn seqlock reads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceJournal {
    /// Records in `(start_ns, trace)` order.
    pub records: Vec<TraceRecord>,
    /// Records overwritten before the collector could read them.
    pub dropped: u64,
}

/// Drain every thread ring into one journal, sorted by start time.
///
/// Intended for a single collector (the load driver / test harness) after
/// the traced workload quiesces; concurrent drains would double-count.
/// Records pushed while the drain runs may be picked up by the next call.
pub fn drain_traces() -> TraceJournal {
    let rings: Vec<Arc<TraceRing>> = registry().read().iter().cloned().collect();
    let mut records = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let head = ring.head.load(Ordering::Acquire);
        let taken = ring.taken.load(Ordering::Relaxed);
        let cap = ring.slots.len() as u64;
        let first = taken.max(head.saturating_sub(cap));
        dropped += first - taken;
        for index in first..head {
            match ring.read(index) {
                Some(rec) => records.push(rec),
                None => dropped += 1,
            }
        }
        ring.taken.store(head, Ordering::Relaxed);
    }
    records.sort_by_key(|r| (r.start_ns, r.trace, r.stage.as_u8()));
    if dropped > 0 {
        crate::metrics::count(crate::names::CTR_TRACE_DROPPED, dropped);
    }
    TraceJournal { records, dropped }
}

/// Discard all pending records in every ring (marks them consumed).
pub fn reset_traces() {
    for ring in registry().read().iter() {
        let head = ring.head.load(Ordering::Acquire);
        ring.taken.store(head, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Request context
// ---------------------------------------------------------------------------

/// Identity of one in-flight service request: trace id, client hash, op.
///
/// Created at the service boundary (`repo.rs` / `CrowdService` public
/// methods) and threaded by value through the shard, WAL, and cache
/// layers. When tracing is disabled the context is inactive (trace id 0)
/// and every recording method returns immediately.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// Process-unique trace id, or 0 when tracing is disabled.
    pub trace_id: u64,
    /// FNV hash of the client identity (0 when unknown).
    pub client: u32,
    /// Operation kind.
    pub op: OpKind,
    /// Absolute deadline on the service clock, in microseconds
    /// (simulated microseconds under the overload simulator). 0 means
    /// "no deadline". Propagated through shard acquisition, the
    /// group-commit wait, and query scans; an expired request returns a
    /// typed `DeadlineExceeded` instead of holding locks.
    pub deadline_us: u64,
}

impl RequestCtx {
    /// Open a context for one request. Allocates a trace id only when
    /// tracing is enabled; otherwise the context is inert.
    #[inline]
    pub fn new(op: OpKind, client: u32) -> Self {
        let trace_id = if TRACING.load(Ordering::Relaxed) {
            NEXT_TRACE.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        RequestCtx {
            trace_id,
            client,
            op,
            deadline_us: 0,
        }
    }

    /// An inert context (no tracing), for internal callers.
    #[inline]
    pub fn disabled(op: OpKind) -> Self {
        RequestCtx {
            trace_id: 0,
            client: 0,
            op,
            deadline_us: 0,
        }
    }

    /// Attach an absolute deadline (service-clock microseconds; 0 = none).
    #[inline]
    pub fn with_deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = deadline_us;
        self
    }

    /// Whether this request's deadline has passed at service time
    /// `now_us`. A context without a deadline never expires.
    #[inline]
    pub fn expired_at(&self, now_us: u64) -> bool {
        self.deadline_us != 0 && now_us >= self.deadline_us
    }

    /// Whether this request is being traced.
    #[inline]
    pub fn active(&self) -> bool {
        self.trace_id != 0
    }

    /// Stage-start timestamp: `now_ns()` when active, 0 otherwise.
    #[inline]
    pub fn begin(&self) -> u64 {
        if self.trace_id != 0 {
            now_ns()
        } else {
            0
        }
    }

    /// Record a stage that started at `start_ns` (from [`Self::begin`])
    /// and ends now.
    #[inline]
    pub fn record(&self, stage: TraceStage, shard: u16, start_ns: u64) {
        self.record_linked(stage, shard, start_ns, 0);
    }

    /// Like [`Self::record`] but with a causal link to another trace.
    #[inline]
    pub fn record_linked(&self, stage: TraceStage, shard: u16, start_ns: u64, link: u64) {
        if self.trace_id == 0 {
            return;
        }
        let dur = now_ns().saturating_sub(start_ns);
        self.record_span(stage, shard, start_ns, dur, link);
    }

    /// Record a stage with explicit start and duration (for spans timed
    /// by another component, e.g. a leader fsync measured inside the WAL).
    pub fn record_span(
        &self,
        stage: TraceStage,
        shard: u16,
        start_ns: u64,
        dur_ns: u64,
        link: u64,
    ) {
        if self.trace_id == 0 {
            return;
        }
        push_record(&TraceRecord {
            trace: self.trace_id,
            client: self.client,
            op: self.op,
            stage,
            shard,
            start_ns,
            dur_ns,
            link,
        });
    }
}

// ---------------------------------------------------------------------------
// Trace journal file IO
// ---------------------------------------------------------------------------

/// Write a trace journal as JSONL: one [`TraceRecord`] object per line,
/// preceded by a `{"dropped": n}` header line.
pub fn write_trace_journal(path: impl AsRef<Path>, journal: &TraceJournal) -> std::io::Result<()> {
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = BufWriter::new(File::create(path)?);
    let render = |v: &Value| {
        serde_json::to_string(v).map_err(|e| std::io::Error::other(format!("serialize: {e}")))
    };
    let header = Value::Object(vec![(
        "dropped".to_string(),
        Value::Int(journal.dropped as i64),
    )]);
    writeln!(w, "{}", render(&header)?)?;
    for rec in &journal.records {
        writeln!(w, "{}", render(&rec.to_value())?)?;
    }
    w.flush()
}

/// Read a trace journal written by [`write_trace_journal`]. Lines that
/// are not trace records (the dropped-count header) are skipped.
pub fn read_trace_journal(path: impl AsRef<Path>) -> Result<TraceJournal, String> {
    let file =
        File::open(path.as_ref()).map_err(|e| format!("open {}: {e}", path.as_ref().display()))?;
    let mut records = Vec::new();
    let mut dropped = 0u64;
    for (lineno, line) in BufReader::new(file).lines().enumerate() {
        let line = line.map_err(|e| format!("read line {}: {e}", lineno + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let value = serde_json::parse(&line)
            .map_err(|e| format!("line {}: invalid JSON: {e}", lineno + 1))?;
        if let Some(d) = value.get("dropped") {
            dropped = u64::from_value(d).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            continue;
        }
        let rec = TraceRecord::from_value(&value)
            .map_err(|e| format!("line {}: not a trace record: {e}", lineno + 1))?;
        records.push(rec);
    }
    Ok(TraceJournal { records, dropped })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests share process-global tracing state; serialize them.
    fn lock() -> parking_lot::MutexGuard<'static, ()> {
        static GATE: OnceLock<parking_lot::Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| parking_lot::Mutex::new(())).lock()
    }

    #[test]
    fn disabled_context_records_nothing() {
        let _g = lock();
        set_tracing_enabled(false);
        reset_traces();
        let ctx = RequestCtx::new(OpKind::Query, 7);
        assert!(!ctx.active());
        let t = ctx.begin();
        ctx.record(TraceStage::Scan, 0, t);
        let journal = drain_traces();
        assert!(journal.records.is_empty());
        assert_eq!(journal.dropped, 0);
    }

    #[test]
    fn records_roundtrip_through_ring_and_file() {
        let _g = lock();
        set_tracing_enabled(true);
        reset_traces();
        let ctx = emit_roundtrip_records();
        set_tracing_enabled(false);
        let journal = drain_traces();
        let ours: Vec<&TraceRecord> = journal
            .records
            .iter()
            .filter(|r| r.trace == ctx.trace_id)
            .collect();
        assert_eq!(ours.len(), 3);
        // Op and ShardLockWait share start_ns = t0; the (start, trace,
        // stage) sort puts Op (stage 0) first.
        assert_eq!(ours[0].stage, TraceStage::Op);
        assert_eq!(ours[1].stage, TraceStage::ShardLockWait);
        assert_eq!(ours[2].stage, TraceStage::MemApply);
        assert_eq!(ours[2].link, 42);
        assert_eq!(ours[0].client, 9);
        assert_eq!(ours[0].op, OpKind::Upload);
        assert_eq!(ours[0].shard, 3);

        let dir = std::env::temp_dir().join(format!("trace_rt_{}", std::process::id()));
        let path = dir.join("trace.jsonl");
        write_trace_journal(&path, &journal).unwrap();
        let back = read_trace_journal(&path).unwrap();
        assert_eq!(back, journal);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn emit_roundtrip_records() -> RequestCtx {
        let ctx = RequestCtx::new(OpKind::Upload, 9);
        assert!(ctx.active());
        let t0 = ctx.begin();
        ctx.record(TraceStage::ShardLockWait, 3, t0);
        let t1 = ctx.begin();
        ctx.record_linked(TraceStage::MemApply, 3, t1, 42);
        ctx.record(TraceStage::Op, 3, t0);
        ctx
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let _g = lock();
        set_tracing_enabled(true);
        reset_traces();
        // New thread gets a fresh (small) ring.
        set_ring_capacity(64);
        let handle = std::thread::spawn(|| {
            let ctx = RequestCtx::new(OpKind::Query, 1);
            for _ in 0..100 {
                let t = ctx.begin();
                ctx.record(TraceStage::Scan, 0, t);
            }
            ctx.trace_id
        });
        let trace = handle.join().unwrap();
        set_tracing_enabled(false);
        set_ring_capacity(4096);
        let journal = drain_traces();
        let ours = journal.records.iter().filter(|r| r.trace == trace).count();
        assert_eq!(ours, 64, "ring keeps exactly its capacity");
        assert!(
            journal.dropped >= 36,
            "overflow counted: {}",
            journal.dropped
        );
    }

    #[test]
    fn concurrent_writers_produce_valid_records() {
        let _g = lock();
        set_tracing_enabled(true);
        reset_traces();
        let threads: Vec<_> = (0..4)
            .map(|i| {
                std::thread::spawn(move || {
                    let ctx = RequestCtx::new(OpKind::Upload, i as u32);
                    for s in 0..200u64 {
                        ctx.record_span(TraceStage::WalEnqueue, i, s * 10, 5, 0);
                    }
                    ctx.trace_id
                })
            })
            .collect();
        let ids: Vec<u64> = threads.into_iter().map(|h| h.join().unwrap()).collect();
        set_tracing_enabled(false);
        let journal = drain_traces();
        for id in ids {
            let n = journal.records.iter().filter(|r| r.trace == id).count();
            assert_eq!(n, 200);
        }
        for rec in &journal.records {
            assert_eq!(rec.dur_ns, 5);
            assert_eq!(rec.stage, TraceStage::WalEnqueue);
        }
    }

    #[test]
    fn op_kind_and_stage_names_roundtrip() {
        for op in [
            OpKind::Upload,
            OpKind::Query,
            OpKind::Delete,
            OpKind::Blob,
            OpKind::Compact,
        ] {
            assert_eq!(OpKind::parse(op.as_str()), Some(op));
            assert_eq!(OpKind::from_u8(op.as_u8()), op);
        }
        for stage in [
            TraceStage::Op,
            TraceStage::ShardLockWait,
            TraceStage::MemApply,
            TraceStage::WalEnqueue,
            TraceStage::WalFsync,
            TraceStage::WalFollowerWait,
            TraceStage::CacheCheck,
            TraceStage::Scan,
            TraceStage::Compact,
            TraceStage::Admission,
            TraceStage::StaleServe,
        ] {
            assert_eq!(TraceStage::parse(stage.as_str()), Some(stage));
            assert_eq!(TraceStage::from_u8(stage.as_u8()), stage);
        }
    }

    #[test]
    fn deadlines_propagate_and_expire_on_the_service_clock() {
        let ctx = RequestCtx::disabled(OpKind::Upload);
        assert_eq!(ctx.deadline_us, 0);
        assert!(!ctx.expired_at(u64::MAX), "no deadline never expires");
        let ctx = ctx.with_deadline_us(500);
        assert!(!ctx.expired_at(499));
        assert!(ctx.expired_at(500));
        assert!(ctx.expired_at(501));
    }
}
