//! Journal round-trip: every event variant serializes to one JSONL line,
//! parses back to the identical value, and malformed lines are rejected
//! as schema violations.

use crowdtune_obs::{read_journal, Event, Journal, JournalError};
use std::sync::Arc;

/// One instance of every event variant, with representative payloads
/// (including a non-finite-derived `None` where the field allows it).
fn all_variants() -> Vec<Event> {
    vec![
        Event::RunStart {
            run: "NoTLA-seed7".into(),
            tuner: "NoTLA".into(),
            dim: 3,
            budget: 20,
            seed: 7,
        },
        Event::Iteration {
            iter: 4,
            point: vec![0.25, 0.5, -1.0],
            value: Some(1.625),
            ok: true,
            proposed_by: "EI".into(),
            best: Some(1.5),
            duration_us: 830,
        },
        Event::Iteration {
            iter: 5,
            point: vec![0.1],
            value: crowdtune_obs::finite(f64::NAN),
            ok: false,
            proposed_by: "EI".into(),
            best: None,
            duration_us: 12,
        },
        Event::Fit {
            model: "gp".into(),
            points: 18,
            restarts: 4,
            nll: Some(-3.75),
            duration_us: 12_000,
            fallback: false,
        },
        Event::Restart {
            index: 2,
            nll: None,
            iterations: 31,
            stop: "gradient_small".into(),
        },
        Event::Acquisition {
            kind: "ei".into(),
            candidates: 400,
            best_score: Some(0.125),
            duration_us: 900,
        },
        Event::Jitter {
            dim: 12,
            jitter: 1e-9,
            attempts: 3,
            recovered: true,
        },
        Event::LineSearch { iteration: 17 },
        Event::Exclusion {
            failed: 2,
            removed: 31,
            pool: 369,
        },
        Event::Weights {
            strategy: "WeightedSum(dynamic)".into(),
            weights: vec![0.5, 0.25, 0.25],
            chosen: "Stacking".into(),
        },
        Event::DbQuery {
            query: "PDGEQRF".into(),
            scanned: 100,
            returned: 40,
            denied: 3,
            cache_hits: 1,
            cache_misses: 2,
            stale_served: 1,
            duration_us: 55,
        },
        Event::Upload {
            accepted: 10,
            rejected: 1,
            contributor: "alice".into(),
            batch: 3,
            duration_us: 70,
        },
        Event::Saltelli {
            dim: 3,
            n: 128,
            total_evals: 640,
            scheme: "sobol".into(),
            duration_us: 210,
        },
        Event::Sobol {
            dim: 3,
            n: 128,
            bootstrap: 100,
            variance: crowdtune_obs::finite(f64::INFINITY),
            duration_us: 950,
        },
        Event::SpaceReduce {
            full_dim: 12,
            kept: 4,
            fixed: 8,
        },
        Event::Profile {
            folded: [
                ("tune".to_string(), 120_000u64),
                ("tune;propose".to_string(), 80_000),
                ("tune;propose;gp_fit".to_string(), 55_000),
            ]
            .into_iter()
            .collect(),
        },
        Event::Refit {
            model: "gp".into(),
            points: 130,
            reason: "schedule".into(),
            full: true,
            updates_since_full: 16,
            nll_per_point: Some(1.375),
        },
        Event::Refit {
            model: "gp".into(),
            points: 131,
            reason: "append".into(),
            full: false,
            updates_since_full: 1,
            nll_per_point: crowdtune_obs::finite(f64::NAN),
        },
        Event::Warmstart {
            model: "lcm".into(),
            warm_nll: Some(-12.5),
            best_nll: Some(-12.625),
            restarts: 1,
            reduced: true,
        },
        Event::Retry {
            iter: 6,
            attempt: 1,
            backoff_s: 2.5,
            error: "transient: simulated node failure".into(),
        },
        Event::FaultInject {
            index: 13,
            kind: "timeout".into(),
            detail: "evaluation exceeded 600s deadline (simulated)".into(),
            doc: 27,
        },
        Event::QualityScore {
            iter: 9,
            doc: 27,
            contributor: "mallory".into(),
            residual: Some(14.5),
            score: Some(9.25),
            flagged: true,
            duplicate: false,
        },
        Event::Quarantine {
            iter: 9,
            doc: 27,
            contributor: "mallory".into(),
            reason: "outlier".into(),
            state: "flagged".into(),
        },
        Event::Calibration {
            model: "gp".into(),
            points: 40,
            coverage90: Some(0.875),
            nll_pp: Some(1.25),
            drift: crowdtune_obs::finite(f64::NAN),
            best: Some(0.0625),
        },
        Event::Checkpoint {
            iter: 10,
            bytes: 4096,
            key: "ckpt/NoTLA-seed7".into(),
        },
        Event::Recovery {
            source: "wal".into(),
            docs: 42,
            records: 7,
            torn: true,
            resumed_iter: None,
        },
        Event::Recovery {
            source: "checkpoint".into(),
            docs: 10,
            records: 0,
            torn: false,
            resumed_iter: Some(10),
        },
        Event::Shed {
            op: "upload".into(),
            shard: 3,
            reason: "queue_full".into(),
            retry_after_ms: 5,
            queue_depth: 8,
        },
        Event::Health {
            shard: 3,
            from: "healthy".into(),
            to: "degraded".into(),
            queue_depth: 6,
        },
        Event::RunEnd {
            iterations: 20,
            failures: 2,
            best: Some(0.875),
            duration_us: 1_000_000,
        },
    ]
}

fn temp_path(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("crowdtune_obs_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

#[test]
fn every_variant_round_trips_bitwise() {
    let path = temp_path("all_variants.jsonl");
    let events = all_variants();
    {
        let journal = Arc::new(Journal::create(&path).unwrap());
        for ev in &events {
            journal.record(ev).unwrap();
        }
        journal.flush().unwrap();
        assert_eq!(journal.lines(), events.len() as u64);
    }
    let back = read_journal(&path).unwrap();
    assert_eq!(back, events);
    // All 27 kinds distinct.
    let mut kinds: Vec<&str> = back.iter().map(|e| e.kind()).collect();
    kinds.sort_unstable();
    kinds.dedup();
    assert_eq!(kinds.len(), 27);
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_event_tag_is_a_schema_violation() {
    let path = temp_path("bad_tag.jsonl");
    std::fs::write(
        &path,
        "{\"event\":\"runstart\",\"run\":\"r\",\"tuner\":\"t\",\"dim\":1,\"budget\":1,\"seed\":0}\n{\"event\":\"frobnicate\",\"x\":1}\n",
    )
    .unwrap();
    match read_journal(&path) {
        Err(JournalError::Schema { line, .. }) => assert_eq!(line, 2),
        other => panic!("expected schema error, got {other:?}"),
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn mid_record_truncation_is_detected() {
    // A record cut mid-write (no trailing newline) must be reported as
    // truncation, not parsed or silently dropped.
    let path = temp_path("truncated.jsonl");
    std::fs::write(&path, "{\"event\":\"linesearch\",\"iter").unwrap();
    assert!(matches!(
        read_journal(&path),
        Err(JournalError::Truncated { line: 1 })
    ));

    // Even a tail that is complete JSON counts as truncated without its
    // terminating newline — Journal::record always writes one.
    std::fs::write(
        &path,
        "{\"event\":\"linesearch\",\"iteration\":1}\n{\"event\":\"linesearch\",\"iteration\":2}",
    )
    .unwrap();
    match read_journal(&path) {
        Err(JournalError::Truncated { line }) => assert_eq!(line, 2),
        other => panic!("expected truncation error, got {other:?}"),
    }

    // The error message names the line and the cause.
    let msg = read_journal(&path).unwrap_err().to_string();
    assert!(msg.contains("truncated"), "message: {msg}");
    assert!(msg.contains("line 2"), "message: {msg}");
    std::fs::remove_file(&path).ok();
}

#[test]
fn missing_field_is_a_schema_violation() {
    let path = temp_path("missing_field.jsonl");
    // `upload` requires accepted/rejected/duration_us.
    std::fs::write(&path, "{\"event\":\"upload\",\"accepted\":1}\n").unwrap();
    assert!(matches!(
        read_journal(&path),
        Err(JournalError::Schema { line: 1, .. })
    ));
    std::fs::remove_file(&path).ok();
}
