//! High-level sensitivity analysis over a named search space.
//!
//! This is the engine behind the tuner's `QuerySensitivityAnalysis`
//! utility: take any model over the unit cube (typically the posterior
//! mean of a GP surrogate fitted to queried crowd data), Saltelli-sample
//! it, and report named Sobol indices like the paper's Tables IV and V.

use crate::saltelli::SaltelliDesign;
use crate::sobol_indices::{sobol_indices, ParamSensitivity, SobolResult};
use crowdtune_space::Space;

/// Configuration for [`analyze_space`].
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Base sample count `N` (total model evaluations: `N * (d + 2)`).
    pub n_samples: usize,
    /// Seed for the sampling fallback and the bootstrap.
    pub seed: u64,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            n_samples: 1024,
            seed: 0,
        }
    }
}

/// A named Sobol analysis result — one row per tuning parameter, like the
/// paper's sensitivity tables.
#[derive(Debug, Clone)]
pub struct NamedSobolResult {
    /// Parameter names, in space order.
    pub names: Vec<String>,
    /// The underlying index values.
    pub result: SobolResult,
}

impl NamedSobolResult {
    /// The row for a named parameter.
    pub fn for_param(&self, name: &str) -> Option<&ParamSensitivity> {
        let i = self.names.iter().position(|n| n == name)?;
        Some(&self.result.params[i])
    }

    /// Names of parameters with total effect above `threshold`, ranked by
    /// total effect descending — the "keep these when reducing the space"
    /// list of the paper's §VI-D/E workflow.
    pub fn influential_names(&self, threshold: f64) -> Vec<&str> {
        let mut idx = self.result.ranking_by_total_effect();
        idx.retain(|&i| self.result.params[i].st > threshold);
        idx.into_iter().map(|i| self.names[i].as_str()).collect()
    }

    /// Format as an aligned text table (`Parameter  S1  S1_conf  ST
    /// ST_conf`), the shape of the paper's Tables IV and V.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let width = self.names.iter().map(|n| n.len()).max().unwrap_or(9).max(9);
        out.push_str(&format!(
            "{:width$}  {:>6}  {:>7}  {:>6}  {:>7}\n",
            "Parameter", "S1", "S1.conf", "ST", "ST.conf",
        ));
        for (name, p) in self.names.iter().zip(&self.result.params) {
            out.push_str(&format!(
                "{:width$}  {:>6.2}  {:>7.2}  {:>6.2}  {:>7.2}\n",
                name, p.s1, p.s1_conf, p.st, p.st_conf,
            ));
        }
        out
    }
}

/// Run a Sobol sensitivity analysis of `model` (a function over the unit
/// cube) against the named parameters of `space`.
pub fn analyze_space<F>(space: &Space, config: &AnalysisConfig, model: F) -> NamedSobolResult
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let design = SaltelliDesign::generate(space.dim(), config.n_samples, config.seed);
    let ev = design.evaluate(model);
    let result = sobol_indices(&ev, config.seed.wrapping_add(1));
    NamedSobolResult {
        names: space.names().into_iter().map(str::to_string).collect(),
        result,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_space::Param;

    fn space3() -> Space {
        Space::new(vec![
            Param::real("alpha", 0.0, 1.0),
            Param::integer("beta", 0, 10),
            Param::categorical("gamma", ["a", "b"]),
        ])
        .unwrap()
    }

    #[test]
    fn names_align_with_indices() {
        let space = space3();
        let res = analyze_space(
            &space,
            &AnalysisConfig {
                n_samples: 512,
                seed: 0,
            },
            |x| 4.0 * x[0] + 0.2 * x[1],
        );
        assert_eq!(res.names, vec!["alpha", "beta", "gamma"]);
        assert!(res.for_param("alpha").unwrap().st > res.for_param("beta").unwrap().st);
        assert!(res.for_param("gamma").unwrap().st < 0.05);
        assert!(res.for_param("nope").is_none());
    }

    #[test]
    fn influential_names_ranked() {
        let space = space3();
        let res = analyze_space(
            &space,
            &AnalysisConfig {
                n_samples: 1024,
                seed: 1,
            },
            |x| 1.5 * x[0] + 5.0 * x[2],
        );
        let infl = res.influential_names(0.02);
        assert_eq!(infl[0], "gamma");
        assert!(infl.contains(&"alpha"));
        assert!(!infl.contains(&"beta"));
    }

    #[test]
    fn table_formatting_contains_rows() {
        let space = space3();
        let res = analyze_space(
            &space,
            &AnalysisConfig {
                n_samples: 128,
                seed: 2,
            },
            |x| x[0],
        );
        let table = res.to_table();
        assert!(table.contains("Parameter"));
        assert!(table.contains("alpha"));
        assert!(table.contains("gamma"));
        assert_eq!(table.lines().count(), 4);
    }
}
