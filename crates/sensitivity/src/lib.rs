//! # crowdtune-sensitivity
//!
//! Global sensitivity analysis for crowd-tuning — the engine behind the
//! paper's `QuerySensitivityAnalysis` utility and its search-space
//! reduction case studies (SuperLU_DIST, Hypre):
//!
//! - [`saltelli`] — Saltelli sample designs (`N (d + 2)` points) over a
//!   Sobol' base (RNG fallback for very high dimension).
//! - [`sobol_indices`] — first-order (Saltelli 2010) and total-effect
//!   (Jansen 1999) estimators with bootstrap confidence intervals,
//!   matching SALib's `sobol.analyze` outputs.
//! - [`morris`] — Morris elementary-effects screening (extension).
//! - [`analyze`] — named, space-aware analysis producing the paper's
//!   Table IV / Table V shape.

#![warn(missing_docs)]

pub mod analyze;
pub mod morris;
pub mod saltelli;
pub mod sobol_indices;

pub use analyze::{analyze_space, AnalysisConfig, NamedSobolResult};
pub use morris::{morris_screening, MorrisParam, MorrisResult};
pub use saltelli::{SaltelliDesign, SaltelliEvaluations};
pub use sobol_indices::{sobol_indices, ParamSensitivity, SobolResult};
