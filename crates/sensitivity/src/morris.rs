//! Morris elementary-effects screening.
//!
//! A cheaper companion to Sobol analysis (documented in DESIGN.md as an
//! extension): `r` random one-at-a-time trajectories of `d + 1` points
//! each give, per parameter, the mean absolute elementary effect `mu*`
//! (overall influence) and the standard deviation `sigma` (nonlinearity /
//! interaction strength). Useful for a first screening pass when even
//! `N (d + 2)` surrogate evaluations are too many.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Morris screening result for one parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct MorrisParam {
    /// Mean of absolute elementary effects (influence).
    pub mu_star: f64,
    /// Mean of signed elementary effects (direction).
    pub mu: f64,
    /// Standard deviation of elementary effects (nonlinearity or
    /// interaction).
    pub sigma: f64,
}

/// Result of a Morris screening run.
#[derive(Debug, Clone)]
pub struct MorrisResult {
    /// Per-parameter statistics, in input order.
    pub params: Vec<MorrisParam>,
    /// Number of trajectories used.
    pub trajectories: usize,
}

impl MorrisResult {
    /// Parameters ranked by `mu*`, descending.
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.params.len()).collect();
        idx.sort_by(|&a, &b| {
            self.params[b]
                .mu_star
                .partial_cmp(&self.params[a].mu_star)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }
}

/// Run Morris screening with `r` trajectories on a model over the unit
/// cube. Uses the standard 4-level grid with jump size 2/3... specifically
/// `p = 4` levels `{0, 1/3, 2/3, 1}` and `delta = 2/3`.
pub fn morris_screening<F>(dim: usize, r: usize, seed: u64, model: F) -> MorrisResult
where
    F: Fn(&[f64]) -> f64,
{
    assert!(dim > 0 && r > 0);
    let levels = [0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0];
    let delta = 2.0 / 3.0;
    let mut rng = StdRng::seed_from_u64(seed);
    // effects[d] = list of elementary effects for parameter d.
    let mut effects: Vec<Vec<f64>> = vec![Vec::with_capacity(r); dim];

    for _ in 0..r {
        // Random base point on the lower part of the grid so that +delta
        // stays inside the cube.
        let mut x: Vec<f64> = (0..dim).map(|_| levels[rng.gen_range(0..2)]).collect();
        let mut order: Vec<usize> = (0..dim).collect();
        order.shuffle(&mut rng);
        let mut f_prev = model(&x);
        for &d in &order {
            // Flip direction if +delta would leave the cube.
            let (step, dir) = if x[d] + delta <= 1.0 {
                (delta, 1.0)
            } else {
                (-delta, -1.0)
            };
            x[d] += step;
            let f_new = model(&x);
            effects[d].push(dir * (f_new - f_prev) / delta);
            f_prev = f_new;
        }
    }

    let params = effects
        .iter()
        .map(|es| {
            let mu = crowdtune_linalg::stats::mean(es);
            let abs: Vec<f64> = es.iter().map(|e| e.abs()).collect();
            MorrisParam {
                mu_star: crowdtune_linalg::stats::mean(&abs),
                mu,
                sigma: crowdtune_linalg::stats::std_dev(es),
            }
        })
        .collect();
    MorrisResult {
        params,
        trajectories: r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_model_exact_effects() {
        // f = 2 x0 - 3 x1: elementary effects are exactly the coefficients.
        let res = morris_screening(2, 20, 1, |x| 2.0 * x[0] - 3.0 * x[1]);
        assert!((res.params[0].mu_star - 2.0).abs() < 1e-9);
        assert!((res.params[1].mu_star - 3.0).abs() < 1e-9);
        assert!((res.params[0].mu - 2.0).abs() < 1e-9);
        assert!((res.params[1].mu + 3.0).abs() < 1e-9, "mu keeps sign");
        assert!(res.params[0].sigma < 1e-9, "linear => sigma 0");
    }

    #[test]
    fn irrelevant_parameter_screened_out() {
        let res = morris_screening(3, 30, 2, |x| (x[0] * 5.0).sin());
        assert!(res.params[1].mu_star < 1e-12);
        assert!(res.params[2].mu_star < 1e-12);
        assert!(res.params[0].mu_star > 0.5);
        assert_eq!(res.ranking()[0], 0);
    }

    #[test]
    fn interaction_raises_sigma() {
        let res = morris_screening(2, 50, 3, |x| x[0] * x[1]);
        // Effect of x0 depends on x1 => nonzero sigma.
        assert!(res.params[0].sigma > 0.1, "sigma = {}", res.params[0].sigma);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = morris_screening(2, 10, 7, |x| x[0] + x[1] * x[1]);
        let b = morris_screening(2, 10, 7, |x| x[0] + x[1] * x[1]);
        assert_eq!(a.params, b.params);
    }
}
