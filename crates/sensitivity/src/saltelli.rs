//! Saltelli sample generation for Sobol sensitivity analysis.
//!
//! The Saltelli scheme evaluates the model on `N * (d + 2)` points built
//! from two base matrices `A` and `B` (each `N x d`) plus the `d` "radial"
//! matrices `AB_i` — `A` with column `i` replaced by `B`'s column `i`.
//! First-order and total-effect indices then come from cheap combinations
//! of those evaluations (see [`crate::sobol_indices`]).
//!
//! Base points come from a Sobol' sequence over `2d` dimensions (columns
//! `0..d` feed `A`, columns `d..2d` feed `B`) when `2d` fits the
//! direction-number table, and from a seeded uniform RNG otherwise — the
//! estimators are unbiased either way; quasi-random bases just converge
//! faster.

use crowdtune_obs as obs;
use crowdtune_space::Sobol;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The Saltelli design: base matrices and radial matrices, all in the
/// unit cube.
#[derive(Debug, Clone)]
pub struct SaltelliDesign {
    /// Input dimensionality.
    pub dim: usize,
    /// Base sample count `N`.
    pub n: usize,
    /// `A` matrix rows (`n` rows of length `dim`).
    pub a: Vec<Vec<f64>>,
    /// `B` matrix rows.
    pub b: Vec<Vec<f64>>,
    /// `ab[i]` = `A` with column `i` taken from `B` (`dim` matrices).
    pub ab: Vec<Vec<Vec<f64>>>,
}

impl SaltelliDesign {
    /// Generate a design of `n` base samples in `dim` dimensions.
    ///
    /// `seed` drives the RNG fallback (and is ignored for the Sobol'
    /// path, which is deterministic).
    pub fn generate(dim: usize, n: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(n > 0, "sample count must be positive");
        let gen_span = obs::span(obs::names::SPAN_SALTELLI_GEN);
        let quasi = 2 * dim <= crowdtune_space::sobol::MAX_DIM;
        let (a, b) = if quasi {
            let mut sob = Sobol::new(2 * dim);
            // Skip the origin and a short warm-up prefix, standard practice
            // to avoid the degenerate first points.
            sob.skip(8);
            let mut a = Vec::with_capacity(n);
            let mut b = Vec::with_capacity(n);
            for _ in 0..n {
                let row = sob.next_point();
                a.push(row[..dim].to_vec());
                b.push(row[dim..].to_vec());
            }
            (a, b)
        } else {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut a = Vec::with_capacity(n);
            let mut b = Vec::with_capacity(n);
            for _ in 0..n {
                a.push((0..dim).map(|_| rng.gen::<f64>()).collect());
                b.push((0..dim).map(|_| rng.gen::<f64>()).collect());
            }
            (a, b)
        };
        let mut ab = Vec::with_capacity(dim);
        for i in 0..dim {
            let mut mat = a.clone();
            for (row, brow) in mat.iter_mut().zip(&b) {
                row[i] = brow[i];
            }
            ab.push(mat);
        }
        let design = SaltelliDesign { dim, n, a, b, ab };
        obs::count(obs::names::CTR_SENS_POINTS, design.total_evals() as u64);
        obs::record_with(|| obs::Event::Saltelli {
            dim: dim as u64,
            n: n as u64,
            total_evals: design.total_evals() as u64,
            scheme: if quasi { "sobol" } else { "rng" }.to_string(),
            duration_us: gen_span.elapsed_ns() / 1_000,
        });
        design
    }

    /// Total number of model evaluations the design requires:
    /// `n * (dim + 2)`.
    pub fn total_evals(&self) -> usize {
        self.n * (self.dim + 2)
    }

    /// Evaluate a model over the whole design. Returns
    /// `(f(A), f(B), f(AB_0..d))`.
    pub fn evaluate<F>(&self, model: F) -> SaltelliEvaluations
    where
        F: Fn(&[f64]) -> f64 + Sync,
    {
        use rayon::prelude::*;
        let _eval_span = obs::span(obs::names::SPAN_SALTELLI_EVAL);
        obs::count(obs::names::CTR_SENS_EVALS, self.total_evals() as u64);
        let fa: Vec<f64> = self.a.par_iter().map(|x| model(x)).collect();
        let fb: Vec<f64> = self.b.par_iter().map(|x| model(x)).collect();
        let fab: Vec<Vec<f64>> = self
            .ab
            .par_iter()
            .map(|mat| mat.iter().map(|x| model(x)).collect())
            .collect();
        SaltelliEvaluations { fa, fb, fab }
    }
}

/// Model evaluations over a Saltelli design.
#[derive(Debug, Clone)]
pub struct SaltelliEvaluations {
    /// `f(A)`.
    pub fa: Vec<f64>,
    /// `f(B)`.
    pub fb: Vec<f64>,
    /// `f(AB_i)` for each dimension `i`.
    pub fab: Vec<Vec<f64>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_shapes() {
        let d = SaltelliDesign::generate(3, 16, 0);
        assert_eq!(d.a.len(), 16);
        assert_eq!(d.b.len(), 16);
        assert_eq!(d.ab.len(), 3);
        assert_eq!(d.ab[0].len(), 16);
        assert_eq!(d.total_evals(), 16 * 5);
    }

    #[test]
    fn ab_matrices_differ_only_in_one_column() {
        let d = SaltelliDesign::generate(4, 8, 0);
        for i in 0..4 {
            for r in 0..8 {
                for c in 0..4 {
                    let expect = if c == i { d.b[r][c] } else { d.a[r][c] };
                    assert_eq!(d.ab[i][r][c], expect, "i={i} r={r} c={c}");
                }
            }
        }
    }

    #[test]
    fn all_points_in_unit_cube() {
        for dim in [2usize, 5, 12] {
            let d = SaltelliDesign::generate(dim, 32, 7);
            for row in d.a.iter().chain(&d.b) {
                assert_eq!(row.len(), dim);
                assert!(row.iter().all(|&x| (0.0..1.0).contains(&x)));
            }
        }
    }

    #[test]
    fn sobol_path_is_deterministic_rng_path_seeded() {
        // 2*3 = 6 <= 21: Sobol path, seed irrelevant.
        let d1 = SaltelliDesign::generate(3, 8, 1);
        let d2 = SaltelliDesign::generate(3, 8, 999);
        assert_eq!(d1.a, d2.a);
        // 2*12 = 24 > 21: RNG path, seed matters.
        let e1 = SaltelliDesign::generate(12, 8, 1);
        let e2 = SaltelliDesign::generate(12, 8, 1);
        let e3 = SaltelliDesign::generate(12, 8, 2);
        assert_eq!(e1.a, e2.a);
        assert_ne!(e1.a, e3.a);
    }

    #[test]
    fn a_and_b_are_distinct() {
        let d = SaltelliDesign::generate(2, 16, 0);
        assert_ne!(d.a, d.b);
    }

    #[test]
    fn evaluate_runs_model_everywhere() {
        let d = SaltelliDesign::generate(3, 10, 0);
        let ev = d.evaluate(|x| x.iter().sum());
        assert_eq!(ev.fa.len(), 10);
        assert_eq!(ev.fb.len(), 10);
        assert_eq!(ev.fab.len(), 3);
        // Spot check one value.
        let want: f64 = d.ab[1][4].iter().sum();
        assert_eq!(ev.fab[1][4], want);
    }
}
