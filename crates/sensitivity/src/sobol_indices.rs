//! Sobol' sensitivity index estimators with bootstrap confidence
//! intervals — the numerical core of the paper's
//! `QuerySensitivityAnalysis` (SALib-compatible estimators).
//!
//! Given Saltelli evaluations:
//!
//! - first-order `S1_i = mean(f(B) * (f(AB_i) - f(A))) / V`
//!   (Saltelli et al. 2010),
//! - total-effect `ST_i = mean((f(A) - f(AB_i))^2) / (2 V)`
//!   (Jansen 1999),
//!
//! where `V` is the variance of the pooled base evaluations. Confidence
//! intervals are percentile-bootstrap half-widths at z = 1.96, matching
//! what SALib reports as `S1_conf` / `ST_conf`.

use crate::saltelli::SaltelliEvaluations;
use crowdtune_linalg::stats;
use crowdtune_obs as obs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Sensitivity indices for one input parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamSensitivity {
    /// First-order (main effect) index.
    pub s1: f64,
    /// Bootstrap 95% confidence half-width of `s1`.
    pub s1_conf: f64,
    /// Total-effect index.
    pub st: f64,
    /// Bootstrap 95% confidence half-width of `st`.
    pub st_conf: f64,
}

/// Full Sobol analysis result.
#[derive(Debug, Clone)]
pub struct SobolResult {
    /// Per-parameter indices, in input order.
    pub params: Vec<ParamSensitivity>,
    /// Variance of the pooled base evaluations (the normalizer).
    pub variance: f64,
}

impl SobolResult {
    /// Indices of parameters ranked by total effect, descending.
    pub fn ranking_by_total_effect(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.params.len()).collect();
        idx.sort_by(|&a, &b| {
            self.params[b]
                .st
                .partial_cmp(&self.params[a].st)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        idx
    }

    /// Parameters whose total effect exceeds `threshold` — the set worth
    /// keeping when reducing a tuning search space.
    pub fn influential(&self, threshold: f64) -> Vec<usize> {
        (0..self.params.len())
            .filter(|&i| self.params[i].st > threshold)
            .collect()
    }
}

/// Number of bootstrap resamples used for confidence intervals.
const N_BOOT: usize = 100;
const Z_95: f64 = 1.96;

/// Compute Sobol indices from Saltelli evaluations.
///
/// `seed` drives the bootstrap resampling only.
pub fn sobol_indices(ev: &SaltelliEvaluations, seed: u64) -> SobolResult {
    let n = ev.fa.len();
    assert!(n > 0, "no evaluations");
    assert_eq!(ev.fb.len(), n);
    let d = ev.fab.len();
    let span = obs::span(obs::names::SPAN_SOBOL_INDICES);
    let bootstrap = if n > 1 { N_BOOT as u64 } else { 0 };
    obs::count(obs::names::CTR_SENS_BOOTSTRAP, bootstrap * d as u64);

    let pooled: Vec<f64> = ev.fa.iter().chain(ev.fb.iter()).copied().collect();
    let variance = stats::variance(&pooled);

    let mut params = Vec::with_capacity(d);
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..d {
        let fab = &ev.fab[i];
        assert_eq!(fab.len(), n);
        let (s1, st) = indices_from_slices(&ev.fa, &ev.fb, fab, variance);

        // Bootstrap over the N base samples.
        let mut s1_samples = Vec::with_capacity(N_BOOT);
        let mut st_samples = Vec::with_capacity(N_BOOT);
        if n > 1 {
            for _ in 0..N_BOOT {
                let idx: Vec<usize> = (0..n).map(|_| rng.gen_range(0..n)).collect();
                let fa_b: Vec<f64> = idx.iter().map(|&k| ev.fa[k]).collect();
                let fb_b: Vec<f64> = idx.iter().map(|&k| ev.fb[k]).collect();
                let fab_b: Vec<f64> = idx.iter().map(|&k| fab[k]).collect();
                let pooled_b: Vec<f64> = fa_b.iter().chain(fb_b.iter()).copied().collect();
                let var_b = stats::variance(&pooled_b);
                let (s1_b, st_b) = indices_from_slices(&fa_b, &fb_b, &fab_b, var_b);
                s1_samples.push(s1_b);
                st_samples.push(st_b);
            }
        }
        params.push(ParamSensitivity {
            s1,
            s1_conf: Z_95 * stats::std_dev(&s1_samples),
            st,
            st_conf: Z_95 * stats::std_dev(&st_samples),
        });
    }
    obs::record_with(|| obs::Event::Sobol {
        dim: d as u64,
        n: n as u64,
        bootstrap,
        variance: obs::finite(variance),
        duration_us: span.elapsed_ns() / 1_000,
    });
    SobolResult { params, variance }
}

fn indices_from_slices(fa: &[f64], fb: &[f64], fab: &[f64], variance: f64) -> (f64, f64) {
    let n = fa.len() as f64;
    if variance <= 0.0 {
        return (0.0, 0.0);
    }
    let mut s1_num = 0.0;
    let mut st_num = 0.0;
    for k in 0..fa.len() {
        s1_num += fb[k] * (fab[k] - fa[k]);
        let dak = fa[k] - fab[k];
        st_num += dak * dak;
    }
    let s1 = (s1_num / n) / variance;
    let st = (st_num / (2.0 * n)) / variance;
    (s1, st)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::saltelli::SaltelliDesign;

    /// The Ishigami function: the standard Sobol-analysis benchmark with
    /// known analytic indices (a = 7, b = 0.1):
    /// S1 = [0.3139, 0.4424, 0.0], ST = [0.5576, 0.4424, 0.2437].
    fn ishigami(x: &[f64]) -> f64 {
        let map = |u: f64| -std::f64::consts::PI + 2.0 * std::f64::consts::PI * u;
        let (x1, x2, x3) = (map(x[0]), map(x[1]), map(x[2]));
        x1.sin() + 7.0 * x2.sin().powi(2) + 0.1 * x3.powi(4) * x1.sin()
    }

    #[test]
    fn ishigami_indices_match_analytic() {
        let design = SaltelliDesign::generate(3, 4096, 0);
        let ev = design.evaluate(ishigami);
        let res = sobol_indices(&ev, 1);
        let s1_expect = [0.3139, 0.4424, 0.0];
        let st_expect = [0.5576, 0.4424, 0.2437];
        for i in 0..3 {
            assert!(
                (res.params[i].s1 - s1_expect[i]).abs() < 0.05,
                "S1[{i}] = {} want {}",
                res.params[i].s1,
                s1_expect[i]
            );
            assert!(
                (res.params[i].st - st_expect[i]).abs() < 0.05,
                "ST[{i}] = {} want {}",
                res.params[i].st,
                st_expect[i]
            );
        }
    }

    #[test]
    fn additive_model_s1_sums_to_one_and_matches_st() {
        // f = 3 x0 + 1 x1: purely additive, so ST_i == S1_i and the S1s
        // are proportional to the coefficient variances (9 : 1).
        let design = SaltelliDesign::generate(2, 4096, 0);
        let ev = design.evaluate(|x| 3.0 * x[0] + x[1]);
        let res = sobol_indices(&ev, 2);
        let total: f64 = res.params.iter().map(|p| p.s1).sum();
        assert!((total - 1.0).abs() < 0.05, "sum S1 = {total}");
        assert!((res.params[0].s1 - 0.9).abs() < 0.05);
        assert!((res.params[1].s1 - 0.1).abs() < 0.05);
        for p in &res.params {
            assert!(
                (p.s1 - p.st).abs() < 0.05,
                "additive: S1 {} vs ST {}",
                p.s1,
                p.st
            );
        }
    }

    #[test]
    fn irrelevant_parameter_scores_zero() {
        let design = SaltelliDesign::generate(3, 2048, 0);
        let ev = design.evaluate(|x| (x[0] * 6.0).sin() + x[1]);
        let res = sobol_indices(&ev, 3);
        assert!(res.params[2].s1.abs() < 0.03);
        assert!(res.params[2].st.abs() < 0.03);
    }

    #[test]
    fn interaction_shows_in_st_not_s1() {
        // f = x0 * x1 (centered): pure interaction — low S1, high ST.
        let design = SaltelliDesign::generate(2, 4096, 0);
        let ev = design.evaluate(|x| (x[0] - 0.5) * (x[1] - 0.5));
        let res = sobol_indices(&ev, 4);
        for p in &res.params {
            assert!(p.s1.abs() < 0.1, "S1 should be ~0, got {}", p.s1);
            assert!(p.st > 0.8, "ST should be ~1, got {}", p.st);
        }
    }

    #[test]
    fn constant_model_all_zero() {
        let design = SaltelliDesign::generate(2, 256, 0);
        let ev = design.evaluate(|_| 42.0);
        let res = sobol_indices(&ev, 5);
        assert_eq!(res.variance, 0.0);
        for p in &res.params {
            assert_eq!(p.s1, 0.0);
            assert_eq!(p.st, 0.0);
        }
    }

    #[test]
    fn ranking_and_influential() {
        let design = SaltelliDesign::generate(3, 2048, 0);
        let ev = design.evaluate(|x| 5.0 * x[2] + 0.5 * x[0]);
        let res = sobol_indices(&ev, 6);
        let rank = res.ranking_by_total_effect();
        assert_eq!(rank[0], 2);
        assert_eq!(rank[1], 0);
        let infl = res.influential(0.05);
        assert!(infl.contains(&2));
        assert!(!infl.contains(&1));
    }

    #[test]
    fn confidence_shrinks_with_more_samples() {
        let small = {
            let d = SaltelliDesign::generate(2, 128, 0);
            sobol_indices(&d.evaluate(|x| x[0] * 2.0 + (x[1] * 9.0).sin()), 7)
        };
        let large = {
            let d = SaltelliDesign::generate(2, 8192, 0);
            sobol_indices(&d.evaluate(|x| x[0] * 2.0 + (x[1] * 9.0).sin()), 7)
        };
        assert!(
            large.params[0].s1_conf < small.params[0].s1_conf,
            "conf should shrink: {} -> {}",
            small.params[0].s1_conf,
            large.params[0].s1_conf
        );
    }
}
