//! # crowdtune-space
//!
//! Search-space definitions for crowd-tuning: named parameters over
//! integer / real / categorical domains, transforms to and from the unit
//! hypercube (where the Gaussian-process stack operates), space
//! *reduction* driven by sensitivity analysis, and samplers (uniform,
//! Latin hypercube, Sobol').
//!
//! A "space" plays two roles, mirroring the paper's meta description:
//! the **input space** of task parameters (what problem is being solved —
//! matrix sizes, mesh densities) and the **parameter space** of tuning
//! parameters (what the tuner may change — block sizes, process grids).

#![warn(missing_docs)]

pub mod param;
pub mod sample;
pub mod sobol;
pub mod space;

pub use param::{Domain, Param, Value};
pub use sample::{sample_lhs, sample_sobol, sample_uniform, sample_uniform_where};
pub use sobol::Sobol;
pub use space::{Point, ReducedSpace, Space, SpaceError};
