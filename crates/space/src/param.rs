//! Tuning/task parameter definitions and values.
//!
//! The paper's meta description declares three kinds of parameters
//! (`"type":"integer"`, `"type":"real"`, and categorical lists), each with
//! bounds. Integer bounds follow the paper's half-open convention
//! `[lower_bound, upper_bound)` — e.g. PDGEQRF's `mb` is "Integer [1,16)".

use serde::{Deserialize, Serialize};

/// The domain of a single parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "type", rename_all = "lowercase")]
pub enum Domain {
    /// Integer in the half-open range `[lo, hi)`.
    Integer {
        /// Inclusive lower bound.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// Real number in the half-open range `[lo, hi)`.
    Real {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// One of a fixed list of category labels.
    Categorical {
        /// The category labels, in index order.
        categories: Vec<String>,
    },
}

impl Domain {
    /// Number of distinct values for finite domains (`None` for `Real`).
    pub fn cardinality(&self) -> Option<usize> {
        match self {
            Domain::Integer { lo, hi } => Some((hi - lo).max(0) as usize),
            Domain::Real { .. } => None,
            Domain::Categorical { categories } => Some(categories.len()),
        }
    }

    /// True when `value` lies inside the domain.
    pub fn contains(&self, value: &Value) -> bool {
        match (self, value) {
            (Domain::Integer { lo, hi }, Value::Int(v)) => v >= lo && v < hi,
            (Domain::Real { lo, hi }, Value::Real(v)) => v.is_finite() && *v >= *lo && *v < *hi,
            (Domain::Categorical { categories }, Value::Cat(idx)) => *idx < categories.len(),
            _ => false,
        }
    }
}

/// A named parameter: a tuning knob or a task descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Parameter name as it appears in the meta description and database.
    pub name: String,
    /// Value domain.
    pub domain: Domain,
}

impl Param {
    /// Integer parameter over `[lo, hi)`.
    pub fn integer(name: impl Into<String>, lo: i64, hi: i64) -> Self {
        assert!(lo < hi, "integer domain must be non-empty: [{lo},{hi})");
        Param {
            name: name.into(),
            domain: Domain::Integer { lo, hi },
        }
    }

    /// Real parameter over `[lo, hi)`.
    pub fn real(name: impl Into<String>, lo: f64, hi: f64) -> Self {
        assert!(lo < hi, "real domain must be non-empty: [{lo},{hi})");
        Param {
            name: name.into(),
            domain: Domain::Real { lo, hi },
        }
    }

    /// Categorical parameter with the given labels.
    pub fn categorical<S: Into<String>>(
        name: impl Into<String>,
        categories: impl IntoIterator<Item = S>,
    ) -> Self {
        let categories: Vec<String> = categories.into_iter().map(Into::into).collect();
        assert!(
            !categories.is_empty(),
            "categorical domain must be non-empty"
        );
        Param {
            name: name.into(),
            domain: Domain::Categorical { categories },
        }
    }
}

/// A concrete parameter value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// Real value.
    Real(f64),
    /// Categorical value, stored as the index into the parameter's
    /// category list (serialized as a bare integer; the owning [`Param`]
    /// provides the label).
    Cat(usize),
}

impl Value {
    /// The value as `f64` (categoricals convert via their index).
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::Int(v) => *v as f64,
            Value::Real(v) => *v,
            Value::Cat(v) => *v as f64,
        }
    }

    /// The integer content, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The category index, if this is a `Cat`.
    pub fn as_cat(&self) -> Option<usize> {
        match self {
            Value::Cat(v) => Some(*v),
            _ => None,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Real(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_domain_contains() {
        let d = Domain::Integer { lo: 1, hi: 16 };
        assert!(d.contains(&Value::Int(1)));
        assert!(d.contains(&Value::Int(15)));
        assert!(!d.contains(&Value::Int(16)));
        assert!(!d.contains(&Value::Int(0)));
        assert!(!d.contains(&Value::Real(3.0)), "type mismatch rejected");
        assert_eq!(d.cardinality(), Some(15));
    }

    #[test]
    fn real_domain_contains() {
        let d = Domain::Real { lo: 0.0, hi: 1.0 };
        assert!(d.contains(&Value::Real(0.0)));
        assert!(d.contains(&Value::Real(0.999)));
        assert!(!d.contains(&Value::Real(1.0)));
        assert!(!d.contains(&Value::Real(f64::NAN)));
        assert_eq!(d.cardinality(), None);
    }

    #[test]
    fn categorical_domain() {
        let p = Param::categorical("COLPERM", ["NATURAL", "MMD_AT_PLUS_A", "METIS"]);
        assert!(p.domain.contains(&Value::Cat(2)));
        assert!(!p.domain.contains(&Value::Cat(3)));
        assert_eq!(p.domain.cardinality(), Some(3));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_integer_domain_panics() {
        let _ = Param::integer("x", 5, 5);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Real(2.5).as_f64(), 2.5);
        assert_eq!(Value::Cat(1).as_f64(), 1.0);
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Real(1.0).as_int(), None);
        assert_eq!(Value::Cat(4).as_cat(), Some(4));
    }

    #[test]
    fn serde_roundtrip() {
        let p = Param::integer("mb", 1, 16);
        let json = serde_json::to_string(&p).unwrap();
        let back: Param = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
