//! Samplers over search spaces: uniform random, Latin hypercube, and
//! Sobol'-sequence sampling.
//!
//! The paper's source-task datasets are "randomly chosen parameter
//! configurations" (uniform), while BO initialization typically prefers
//! stratified designs (LHS) and Saltelli sampling requires Sobol'.

use crate::sobol::Sobol;
use crate::space::{Point, Space};
use rand::seq::SliceRandom;
use rand::Rng;

/// Draw `n` points uniformly at random from the space.
pub fn sample_uniform<R: Rng>(space: &Space, n: usize, rng: &mut R) -> Vec<Point> {
    (0..n)
        .map(|_| {
            let u: Vec<f64> = (0..space.dim()).map(|_| rng.gen::<f64>()).collect();
            space
                .from_unit(&u)
                .expect("unit vector has the right length")
        })
        .collect()
}

/// Draw `n` points uniformly at random subject to a predicate (rejection
/// sampling). Gives up after `60 * n` draws and returns what it has —
/// callers with near-empty feasible regions should check the length.
pub fn sample_uniform_where<R: Rng>(
    space: &Space,
    n: usize,
    rng: &mut R,
    mut accept: impl FnMut(&Point) -> bool,
) -> Vec<Point> {
    let mut out = Vec::with_capacity(n);
    let mut tries = 0usize;
    while out.len() < n && tries < n.saturating_mul(60).max(60) {
        tries += 1;
        let p = sample_uniform(space, 1, rng).pop().expect("one point");
        if accept(&p) {
            out.push(p);
        }
    }
    out
}

/// Latin hypercube sample of `n` points: each dimension is split into `n`
/// strata, each stratum hit exactly once, with random within-stratum
/// jitter and independent permutations per dimension.
pub fn sample_lhs<R: Rng>(space: &Space, n: usize, rng: &mut R) -> Vec<Point> {
    if n == 0 {
        return Vec::new();
    }
    let d = space.dim();
    // One shuffled stratum order per dimension.
    let mut strata: Vec<Vec<usize>> = Vec::with_capacity(d);
    for _ in 0..d {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.shuffle(rng);
        strata.push(idx);
    }
    (0..n)
        .map(|i| {
            let u: Vec<f64> = (0..d)
                .map(|j| (strata[j][i] as f64 + rng.gen::<f64>()) / n as f64)
                .collect();
            space
                .from_unit(&u)
                .expect("unit vector has the right length")
        })
        .collect()
}

/// The first `n` points of a Sobol' sequence mapped into the space
/// (skipping the all-zeros origin point).
pub fn sample_sobol(space: &Space, n: usize) -> Vec<Point> {
    let mut sob = Sobol::new(space.dim());
    sob.skip(1);
    (0..n)
        .map(|_| {
            let u = sob.next_point();
            space
                .from_unit(&u)
                .expect("unit vector has the right length")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{Param, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn space() -> Space {
        Space::new(vec![
            Param::integer("i", 0, 10),
            Param::real("r", -1.0, 1.0),
            Param::categorical("c", ["x", "y", "z"]),
        ])
        .unwrap()
    }

    #[test]
    fn uniform_points_are_valid() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(42);
        for p in sample_uniform(&s, 100, &mut rng) {
            assert!(s.validate(&p).is_ok());
        }
    }

    #[test]
    fn uniform_is_seed_deterministic() {
        let s = space();
        let a = sample_uniform(&s, 10, &mut StdRng::seed_from_u64(7));
        let b = sample_uniform(&s, 10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        let c = sample_uniform(&s, 10, &mut StdRng::seed_from_u64(8));
        assert_ne!(a, c);
    }

    #[test]
    fn lhs_stratifies_reals() {
        // With n = 10 over r in [-1, 1), each of the 10 strata of width 0.2
        // must contain exactly one sample.
        let s = Space::new(vec![Param::real("r", -1.0, 1.0)]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let pts = sample_lhs(&s, 10, &mut rng);
        let mut seen = [0usize; 10];
        for p in &pts {
            if let Value::Real(x) = p[0] {
                let stratum = (((x + 1.0) / 2.0) * 10.0).floor() as usize;
                seen[stratum.min(9)] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "strata counts: {seen:?}");
    }

    #[test]
    fn lhs_integer_coverage() {
        // 10 LHS samples over an integer domain of 10 values must hit every
        // value exactly once.
        let s = Space::new(vec![Param::integer("i", 0, 10)]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let pts = sample_lhs(&s, 10, &mut rng);
        let mut vals: Vec<i64> = pts.iter().filter_map(|p| p[0].as_int()).collect();
        vals.sort_unstable();
        assert_eq!(vals, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn lhs_zero_points() {
        let s = space();
        let mut rng = StdRng::seed_from_u64(0);
        assert!(sample_lhs(&s, 0, &mut rng).is_empty());
    }

    #[test]
    fn constrained_sampling_respects_predicate() {
        let s = Space::new(vec![Param::integer("i", 0, 10)]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let pts = sample_uniform_where(&s, 20, &mut rng, |p| p[0].as_int().unwrap() % 2 == 0);
        assert_eq!(pts.len(), 20);
        assert!(pts.iter().all(|p| p[0].as_int().unwrap() % 2 == 0));
    }

    #[test]
    fn constrained_sampling_gives_up_gracefully() {
        let s = Space::new(vec![Param::integer("i", 0, 10)]).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let pts = sample_uniform_where(&s, 10, &mut rng, |_| false);
        assert!(pts.is_empty());
    }

    #[test]
    fn sobol_points_are_valid_and_deterministic() {
        let s = space();
        let a = sample_sobol(&s, 64);
        let b = sample_sobol(&s, 64);
        assert_eq!(a, b);
        for p in &a {
            assert!(s.validate(p).is_ok());
        }
    }
}
