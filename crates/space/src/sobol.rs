//! Sobol' low-discrepancy sequence generator (Gray-code construction).
//!
//! The Saltelli sampling scheme behind the paper's sensitivity analysis
//! (SALib's `sobol` module) draws its base points from a Sobol' sequence.
//! This is a from-scratch implementation using the Antonov–Saleev
//! Gray-code recurrence over 32-bit direction vectors.
//!
//! Direction numbers: dimension 0 is the van der Corput sequence; higher
//! dimensions use primitive polynomials with Joe–Kuo-style initial values.
//! Every initial value `m_k` satisfies the validity conditions (odd and
//! `< 2^k`), which is what correctness of the net requires; the exact
//! choice of table only affects the constant in the discrepancy bound.

/// Maximum supported dimensionality of this generator's table.
pub const MAX_DIM: usize = 21;

/// Primitive polynomial degrees, coefficients and initial direction
/// numbers for dimensions 1..=20 (dimension 0 is van der Corput).
/// Each entry is (s, a, m[0..s]).
const TABLE: &[(u32, u32, &[u32])] = &[
    (1, 0, &[1]),
    (2, 1, &[1, 3]),
    (3, 1, &[1, 3, 1]),
    (3, 2, &[1, 1, 1]),
    (4, 1, &[1, 1, 3, 3]),
    (4, 4, &[1, 3, 5, 13]),
    (5, 2, &[1, 1, 5, 5, 17]),
    (5, 4, &[1, 1, 5, 5, 5]),
    (5, 7, &[1, 1, 7, 11, 19]),
    (5, 11, &[1, 1, 5, 1, 1]),
    (5, 13, &[1, 1, 1, 3, 11]),
    (5, 14, &[1, 3, 5, 5, 31]),
    (6, 1, &[1, 3, 3, 9, 7, 49]),
    (6, 13, &[1, 1, 1, 15, 21, 21]),
    (6, 16, &[1, 3, 1, 13, 27, 49]),
    (6, 19, &[1, 1, 1, 15, 7, 5]),
    (6, 22, &[1, 3, 1, 3, 25, 1]),
    (6, 25, &[1, 1, 5, 5, 19, 61]),
    (7, 1, &[1, 3, 7, 11, 23, 15, 103]),
    (7, 4, &[1, 3, 7, 13, 13, 15, 69]),
];

const BITS: u32 = 32;

/// A Sobol' sequence over `[0,1)^dim`.
#[derive(Debug, Clone)]
pub struct Sobol {
    dim: usize,
    /// Direction vectors, `v[d][k]`, already shifted into bit position.
    v: Vec<[u32; BITS as usize]>,
    /// Current Gray-code state per dimension.
    x: Vec<u32>,
    /// Index of the next point to emit (0 = the origin).
    index: u64,
}

impl Sobol {
    /// Create a generator for `dim` dimensions.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `dim > MAX_DIM`.
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0, "Sobol dimension must be positive");
        assert!(
            dim <= MAX_DIM,
            "Sobol table supports up to {MAX_DIM} dimensions, got {dim}"
        );
        let mut v = Vec::with_capacity(dim);
        // Dimension 0: van der Corput, v_k = 1 << (31 - k).
        let mut v0 = [0u32; BITS as usize];
        for (k, vk) in v0.iter_mut().enumerate() {
            *vk = 1 << (BITS - 1 - k as u32);
        }
        v.push(v0);
        for d in 1..dim {
            let (s, a, m_init) = TABLE[d - 1];
            let s = s as usize;
            let mut m = vec![0u32; BITS as usize];
            m[..s].copy_from_slice(m_init);
            for k in s..BITS as usize {
                // m_k = 2 a_1 m_{k-1} XOR 4 a_2 m_{k-2} XOR ... XOR
                //       2^s m_{k-s} XOR m_{k-s}
                let mut mk = m[k - s] ^ (m[k - s] << s);
                for j in 1..s {
                    let a_j = (a >> (s - 1 - j)) & 1;
                    if a_j == 1 {
                        mk ^= m[k - j] << j;
                    }
                }
                m[k] = mk;
            }
            let mut vd = [0u32; BITS as usize];
            for k in 0..BITS as usize {
                vd[k] = m[k] << (BITS - 1 - k as u32);
            }
            v.push(vd);
        }
        Sobol {
            dim,
            v,
            x: vec![0; dim],
            index: 0,
        }
    }

    /// Dimensionality of the sequence.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Next point of the sequence. The first point is the origin, matching
    /// the canonical (unscrambled) Sobol' construction.
    pub fn next_point(&mut self) -> Vec<f64> {
        const SCALE: f64 = 1.0 / (1u64 << BITS) as f64;
        if self.index == 0 {
            self.index = 1;
            return vec![0.0; self.dim];
        }
        // Gray-code step: flip by the direction vector of the lowest zero
        // bit of (index - 1).
        let c = (self.index - 1).trailing_ones() as usize;
        for d in 0..self.dim {
            self.x[d] ^= self.v[d][c];
        }
        self.index += 1;
        self.x.iter().map(|&xi| xi as f64 * SCALE).collect()
    }

    /// Skip the first `n` points (commonly used to drop the origin and
    /// warm up the sequence before Saltelli sampling).
    pub fn skip(&mut self, n: u64) {
        for _ in 0..n {
            let _ = self.next_point();
        }
    }

    /// Generate the next `n` points as rows.
    pub fn take_points(&mut self, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.next_point()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_dimension_is_van_der_corput() {
        let mut s = Sobol::new(1);
        let pts: Vec<f64> = (0..8).map(|_| s.next_point()[0]).collect();
        // Canonical base-2 van der Corput: 0, 1/2, 3/4, 1/4, 3/8, 7/8, 5/8, 1/8.
        let expect = [0.0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125];
        for (p, e) in pts.iter().zip(expect.iter()) {
            assert!((p - e).abs() < 1e-12, "got {p}, want {e}");
        }
    }

    #[test]
    fn all_points_in_unit_cube() {
        let mut s = Sobol::new(8);
        for _ in 0..512 {
            let p = s.next_point();
            assert_eq!(p.len(), 8);
            for &x in &p {
                assert!((0.0..1.0).contains(&x), "coordinate out of range: {x}");
            }
        }
    }

    #[test]
    fn no_duplicate_points_in_prefix() {
        let mut s = Sobol::new(3);
        let pts = s.take_points(256);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                assert_ne!(pts[i], pts[j], "duplicate at {i}, {j}");
            }
        }
    }

    #[test]
    fn balanced_in_every_dimension() {
        // The prefix 0..2^k is a (0, k, d)-net block: each dimension has
        // exactly half its points below 1/2 (the origin included).
        let mut s = Sobol::new(MAX_DIM);
        let pts = s.take_points(128);
        for d in 0..MAX_DIM {
            let below = pts.iter().filter(|p| p[d] < 0.5).count();
            assert_eq!(below, 64, "dimension {d} unbalanced: {below}/128 below 0.5");
        }
    }

    #[test]
    fn stratification_quarters() {
        // In the first 4^1 * 4 = 16 points of any dimension pair, each
        // quarter-cell of the 2D projection should be hit at least once for
        // the low dimensions of the table.
        let mut s = Sobol::new(2);
        s.skip(1);
        let pts = s.take_points(16);
        let mut cells = [[0usize; 2]; 2];
        for p in &pts {
            cells[((p[0] * 2.0) as usize).min(1)][((p[1] * 2.0) as usize).min(1)] += 1;
        }
        for row in &cells {
            for &c in row {
                assert!(c >= 2, "a 2x2 cell saw {c} of 16 points");
            }
        }
    }

    #[test]
    fn skip_matches_sequential() {
        let mut a = Sobol::new(4);
        let mut b = Sobol::new(4);
        a.skip(10);
        for _ in 0..10 {
            b.next_point();
        }
        assert_eq!(a.next_point(), b.next_point());
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn too_many_dimensions_panics() {
        let _ = Sobol::new(MAX_DIM + 1);
    }

    #[test]
    fn direction_numbers_are_valid() {
        // m_k odd and < 2^k for all table entries.
        for (s, _a, ms) in TABLE {
            assert_eq!(*s as usize, ms.len());
            for (k, &m) in ms.iter().enumerate() {
                assert_eq!(m % 2, 1, "m must be odd");
                assert!(m < (2u32 << k), "m_{k} = {m} too large");
            }
        }
    }
}
