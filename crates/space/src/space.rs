//! Search spaces: ordered lists of parameters with transforms to and from
//! the unit hypercube, plus the space *reduction* operation that the
//! sensitivity-analysis case studies rely on (fix insensitive parameters,
//! tune the rest).

use crate::param::{Domain, Param, Value};
use crowdtune_obs as obs;
use serde::{Deserialize, Serialize};

/// An ordered set of named parameters (a task space or a tuning space).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Space {
    params: Vec<Param>,
}

/// A point in a space: one [`Value`] per parameter, in space order.
pub type Point = Vec<Value>;

/// Errors from space validation and transforms.
#[derive(Debug, Clone, PartialEq)]
pub enum SpaceError {
    /// Point length differs from the space dimension.
    DimensionMismatch {
        /// Expected dimension (number of parameters).
        expected: usize,
        /// Length of the offending point.
        got: usize,
    },
    /// A value fell outside its parameter's domain.
    OutOfDomain {
        /// Name of the violated parameter.
        param: String,
        /// Index of the violated parameter.
        index: usize,
    },
    /// A parameter name was not found in the space.
    UnknownParam(String),
    /// Duplicate parameter name at construction.
    DuplicateParam(String),
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::DimensionMismatch { expected, got } => {
                write!(f, "point has {got} values, space has {expected} parameters")
            }
            SpaceError::OutOfDomain { param, index } => {
                write!(
                    f,
                    "value for parameter '{param}' (index {index}) is out of domain"
                )
            }
            SpaceError::UnknownParam(name) => write!(f, "unknown parameter '{name}'"),
            SpaceError::DuplicateParam(name) => write!(f, "duplicate parameter '{name}'"),
        }
    }
}

impl std::error::Error for SpaceError {}

impl Space {
    /// Build a space from parameters; names must be unique.
    pub fn new(params: Vec<Param>) -> Result<Self, SpaceError> {
        for (i, p) in params.iter().enumerate() {
            if params[..i].iter().any(|q| q.name == p.name) {
                return Err(SpaceError::DuplicateParam(p.name.clone()));
            }
        }
        Ok(Space { params })
    }

    /// Number of parameters.
    pub fn dim(&self) -> usize {
        self.params.len()
    }

    /// The parameters in order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Look up a parameter index by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name == name)
    }

    /// Parameter names in order.
    pub fn names(&self) -> Vec<&str> {
        self.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// Per-dimension cell counts: `Some(k)` for discrete domains with `k`
    /// cells (integers, categoricals), `None` for continuous reals.
    /// Surrogate-side consumers use this to snap unit coordinates to cell
    /// centers so that discrete kernels see exact cell identity.
    pub fn cell_counts(&self) -> Vec<Option<usize>> {
        self.params.iter().map(|p| p.domain.cardinality()).collect()
    }

    /// Snap a unit-cube vector to the cell centers of discrete dimensions
    /// (continuous dimensions pass through). Equivalent to
    /// `to_unit(from_unit(u))` but allocation-light.
    pub fn snap_unit(&self, unit: &mut [f64]) {
        obs::count(obs::names::CTR_SPACE_SNAP, 1);
        for (p, u) in self.params.iter().zip(unit.iter_mut()) {
            if let Some(k) = p.domain.cardinality() {
                let uu = if u.is_finite() {
                    u.clamp(0.0, 1.0 - 1e-12)
                } else {
                    0.0
                };
                *u = ((uu * k as f64).floor() + 0.5) / k as f64;
            }
        }
    }

    /// Validate a point against the space.
    pub fn validate(&self, point: &[Value]) -> Result<(), SpaceError> {
        if point.len() != self.dim() {
            return Err(SpaceError::DimensionMismatch {
                expected: self.dim(),
                got: point.len(),
            });
        }
        for (i, (p, v)) in self.params.iter().zip(point).enumerate() {
            if !p.domain.contains(v) {
                return Err(SpaceError::OutOfDomain {
                    param: p.name.clone(),
                    index: i,
                });
            }
        }
        Ok(())
    }

    /// Map a point into the unit hypercube `[0,1)^d`.
    ///
    /// Reals map affinely; integers and categoricals map to the *center* of
    /// their cell so that `from_unit(to_unit(x)) == x` exactly.
    pub fn to_unit(&self, point: &[Value]) -> Result<Vec<f64>, SpaceError> {
        obs::count(obs::names::CTR_SPACE_TO_UNIT, 1);
        self.validate(point)?;
        Ok(self
            .params
            .iter()
            .zip(point)
            .map(|(p, v)| match (&p.domain, v) {
                (Domain::Real { lo, hi }, Value::Real(x)) => (x - lo) / (hi - lo),
                (Domain::Integer { lo, hi }, Value::Int(x)) => {
                    ((x - lo) as f64 + 0.5) / (hi - lo) as f64
                }
                (Domain::Categorical { categories }, Value::Cat(idx)) => {
                    (*idx as f64 + 0.5) / categories.len() as f64
                }
                _ => unreachable!("validate() checked the types"),
            })
            .collect())
    }

    /// Map a unit-cube vector back to a concrete point. Coordinates are
    /// clamped into `[0, 1)` first, so any real vector is acceptable.
    pub fn from_unit(&self, unit: &[f64]) -> Result<Point, SpaceError> {
        obs::count(obs::names::CTR_SPACE_FROM_UNIT, 1);
        if unit.len() != self.dim() {
            return Err(SpaceError::DimensionMismatch {
                expected: self.dim(),
                got: unit.len(),
            });
        }
        Ok(self
            .params
            .iter()
            .zip(unit)
            .map(|(p, &u)| {
                let u = if u.is_finite() {
                    u.clamp(0.0, 1.0 - 1e-12)
                } else {
                    0.0
                };
                match &p.domain {
                    Domain::Real { lo, hi } => Value::Real(lo + u * (hi - lo)),
                    Domain::Integer { lo, hi } => {
                        let cells = (hi - lo) as f64;
                        Value::Int(lo + (u * cells).floor() as i64)
                    }
                    Domain::Categorical { categories } => {
                        Value::Cat((u * categories.len() as f64).floor() as usize)
                    }
                }
            })
            .collect())
    }

    /// Reduce the space: keep only `kept` parameters (by name) as tunable
    /// and fix every other parameter to the value given by `fixed`.
    ///
    /// This is the sensitivity-analysis workflow of the paper's §VI-D/E:
    /// after Sobol analysis identifies insensitive parameters, tuning
    /// proceeds on the reduced space while insensitive parameters are
    /// pinned (to defaults, or to random values when no default is known).
    pub fn reduce(
        &self,
        kept: &[&str],
        fixed: &[(&str, Value)],
    ) -> Result<ReducedSpace, SpaceError> {
        let mut kept_idx = Vec::with_capacity(kept.len());
        for name in kept {
            let idx = self
                .index_of(name)
                .ok_or_else(|| SpaceError::UnknownParam((*name).into()))?;
            kept_idx.push(idx);
        }
        let mut fixed_values: Vec<Option<Value>> = vec![None; self.dim()];
        for (name, v) in fixed {
            let idx = self
                .index_of(name)
                .ok_or_else(|| SpaceError::UnknownParam((*name).into()))?;
            if !self.params[idx].domain.contains(v) {
                return Err(SpaceError::OutOfDomain {
                    param: (*name).into(),
                    index: idx,
                });
            }
            fixed_values[idx] = Some(v.clone());
        }
        // Every parameter must be either kept or fixed.
        for (i, p) in self.params.iter().enumerate() {
            let is_kept = kept_idx.contains(&i);
            let is_fixed = fixed_values[i].is_some();
            if is_kept && is_fixed {
                return Err(SpaceError::DuplicateParam(p.name.clone()));
            }
            if !is_kept && !is_fixed {
                return Err(SpaceError::UnknownParam(format!(
                    "parameter '{}' is neither kept nor fixed",
                    p.name
                )));
            }
        }
        let sub = Space::new(kept_idx.iter().map(|&i| self.params[i].clone()).collect())?;
        obs::count(obs::names::CTR_SPACE_REDUCE, 1);
        obs::record_with(|| obs::Event::SpaceReduce {
            full_dim: self.dim() as u64,
            kept: kept_idx.len() as u64,
            fixed: fixed_values.iter().filter(|v| v.is_some()).count() as u64,
        });
        Ok(ReducedSpace {
            full: self.clone(),
            sub,
            kept_idx,
            fixed_values,
        })
    }
}

/// A reduced view of a [`Space`]: a sub-space of tunable parameters plus
/// pinned values for the rest. Points in the sub-space expand to points in
/// the full space.
#[derive(Debug, Clone)]
pub struct ReducedSpace {
    full: Space,
    sub: Space,
    kept_idx: Vec<usize>,
    fixed_values: Vec<Option<Value>>,
}

impl ReducedSpace {
    /// The tunable sub-space.
    pub fn sub_space(&self) -> &Space {
        &self.sub
    }

    /// The original full space.
    pub fn full_space(&self) -> &Space {
        &self.full
    }

    /// Expand a sub-space point into a full-space point.
    pub fn expand(&self, sub_point: &[Value]) -> Result<Point, SpaceError> {
        self.sub.validate(sub_point)?;
        let mut full = Vec::with_capacity(self.full.dim());
        for (i, fv) in self.fixed_values.iter().enumerate() {
            match fv {
                Some(v) => full.push(v.clone()),
                None => {
                    let k = self
                        .kept_idx
                        .iter()
                        .position(|&ki| ki == i)
                        .expect("kept index");
                    full.push(sub_point[k].clone());
                }
            }
        }
        Ok(full)
    }

    /// Project a full-space point onto the tunable sub-space.
    pub fn project(&self, full_point: &[Value]) -> Result<Point, SpaceError> {
        self.full.validate(full_point)?;
        Ok(self
            .kept_idx
            .iter()
            .map(|&i| full_point[i].clone())
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_space() -> Space {
        Space::new(vec![
            Param::integer("mb", 1, 16),
            Param::real("x", 0.0, 10.0),
            Param::categorical("colperm", ["A", "B", "C", "D"]),
        ])
        .unwrap()
    }

    #[test]
    fn dims_and_lookup() {
        let s = demo_space();
        assert_eq!(s.dim(), 3);
        assert_eq!(s.index_of("x"), Some(1));
        assert_eq!(s.index_of("nope"), None);
        assert_eq!(s.names(), vec!["mb", "x", "colperm"]);
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = Space::new(vec![Param::integer("a", 0, 2), Param::integer("a", 0, 3)]);
        assert!(matches!(err, Err(SpaceError::DuplicateParam(_))));
    }

    #[test]
    fn validate_catches_mismatch_and_domain() {
        let s = demo_space();
        assert!(matches!(
            s.validate(&[Value::Int(3)]),
            Err(SpaceError::DimensionMismatch {
                expected: 3,
                got: 1
            })
        ));
        assert!(matches!(
            s.validate(&[Value::Int(16), Value::Real(1.0), Value::Cat(0)]),
            Err(SpaceError::OutOfDomain { index: 0, .. })
        ));
        assert!(s
            .validate(&[Value::Int(15), Value::Real(0.0), Value::Cat(3)])
            .is_ok());
    }

    #[test]
    fn unit_roundtrip_exact_for_discrete() {
        let s = demo_space();
        for mb in [1i64, 7, 15] {
            for cat in 0..4usize {
                let p = vec![Value::Int(mb), Value::Real(3.25), Value::Cat(cat)];
                let u = s.to_unit(&p).unwrap();
                assert!(u.iter().all(|&x| (0.0..1.0).contains(&x)));
                let back = s.from_unit(&u).unwrap();
                assert_eq!(back[0], Value::Int(mb));
                assert_eq!(back[2], Value::Cat(cat));
                if let Value::Real(x) = back[1] {
                    assert!((x - 3.25).abs() < 1e-12);
                } else {
                    panic!("expected real");
                }
            }
        }
    }

    #[test]
    fn from_unit_clamps() {
        let s = demo_space();
        let p = s.from_unit(&[1.5, -0.3, 0.9999999]).unwrap();
        assert_eq!(p[0], Value::Int(15)); // clamped to top cell
        assert_eq!(p[1], Value::Real(0.0));
        assert_eq!(p[2], Value::Cat(3));
        // Non-finite coordinates collapse to the bottom of the domain.
        let q = s.from_unit(&[f64::NAN, f64::INFINITY, 0.0]).unwrap();
        assert_eq!(q[0], Value::Int(1));
    }

    #[test]
    fn reduce_and_expand() {
        let s = demo_space();
        let red = s
            .reduce(&["mb", "colperm"], &[("x", Value::Real(5.0))])
            .unwrap();
        assert_eq!(red.sub_space().dim(), 2);
        let full = red.expand(&[Value::Int(4), Value::Cat(2)]).unwrap();
        assert_eq!(full, vec![Value::Int(4), Value::Real(5.0), Value::Cat(2)]);
        let back = red.project(&full).unwrap();
        assert_eq!(back, vec![Value::Int(4), Value::Cat(2)]);
    }

    #[test]
    fn reduce_requires_full_cover() {
        let s = demo_space();
        // 'x' neither kept nor fixed.
        assert!(s.reduce(&["mb", "colperm"], &[]).is_err());
        // unknown name
        assert!(s.reduce(&["zzz"], &[]).is_err());
        // fixed value out of domain
        assert!(s
            .reduce(&["mb", "colperm"], &[("x", Value::Real(11.0))])
            .is_err());
    }
}
