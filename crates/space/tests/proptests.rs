//! Property-based tests for spaces, transforms and samplers.

use crowdtune_space::{sample_lhs, sample_uniform, Param, Sobol, Space, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: an arbitrary mixed space of 1..=6 parameters.
fn space_strategy() -> impl Strategy<Value = Space> {
    proptest::collection::vec(0..3usize, 1..=6).prop_map(|kinds| {
        let params = kinds
            .iter()
            .enumerate()
            .map(|(i, kind)| match kind {
                0 => Param::integer(format!("i{i}"), -3, 9),
                1 => Param::real(format!("r{i}"), -2.5, 4.0),
                _ => Param::categorical(format!("c{i}"), ["a", "b", "c", "d", "e"]),
            })
            .collect();
        Space::new(params).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn from_unit_to_unit_roundtrip(space in space_strategy(), seed in 0u64..10_000) {
        // from_unit -> to_unit -> from_unit is the identity on points.
        let mut rng = StdRng::seed_from_u64(seed);
        for p in sample_uniform(&space, 8, &mut rng) {
            let u = space.to_unit(&p).unwrap();
            let back = space.from_unit(&u).unwrap();
            prop_assert_eq!(&back, &p);
        }
    }

    #[test]
    fn unit_coordinates_in_range(space in space_strategy(), seed in 0u64..10_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for p in sample_uniform(&space, 8, &mut rng) {
            for u in space.to_unit(&p).unwrap() {
                prop_assert!((0.0..1.0).contains(&u));
            }
        }
    }

    #[test]
    fn lhs_points_always_valid(space in space_strategy(), n in 1usize..40, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        for p in sample_lhs(&space, n, &mut rng) {
            prop_assert!(space.validate(&p).is_ok());
        }
    }

    #[test]
    fn sobol_prefix_within_bounds(dim in 1usize..=21, n in 1usize..200) {
        let mut s = Sobol::new(dim);
        for _ in 0..n {
            let p = s.next_point();
            prop_assert_eq!(p.len(), dim);
            for x in p {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    #[test]
    fn reduce_expand_project_roundtrip(seed in 0u64..10_000) {
        let space = Space::new(vec![
            Param::integer("a", 0, 8),
            Param::real("b", 0.0, 1.0),
            Param::categorical("c", ["x", "y"]),
            Param::integer("d", 1, 5),
        ]).unwrap();
        let red = space
            .reduce(&["a", "c"], &[("b", Value::Real(0.5)), ("d", Value::Int(2))])
            .unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        for sub in sample_uniform(red.sub_space(), 8, &mut rng) {
            let full = red.expand(&sub).unwrap();
            prop_assert!(space.validate(&full).is_ok());
            prop_assert_eq!(red.project(&full).unwrap(), sub);
            // Fixed coordinates really are pinned.
            prop_assert_eq!(&full[1], &Value::Real(0.5));
            prop_assert_eq!(&full[3], &Value::Int(2));
        }
    }
}
