//! Tail-latency attribution over request-trace journals.
//!
//! Answers the operational question the crowd service's trace layer
//! exists for: **which stage dominates p99 for op X on shard Y?** The
//! pass assembles per-trace operations from raw [`TraceRecord`]s (each
//! trace has one end-to-end `op` stage plus its child stages), takes the
//! exact order-statistic q-quantile of end-to-end latencies per
//! `(op, shard)` group (like [`crate::fleet::percentile_us`]), and then
//! attributes time *within the tail set* — the traces at or above the
//! quantile — to stages, naming the stage with the largest share.
//!
//! It also checks the accounting itself: [`reconcile`] verifies that per
//! trace, child-stage durations do not exceed the end-to-end op duration
//! beyond a slack, and reports what fraction of op wall time the stages
//! explain — `crowd_load --trace` asserts over this so the trace layer
//! cannot silently drift from reality.

use std::collections::BTreeMap;

use crowdtune_obs::trace::{OpKind, TraceRecord, TraceStage};
use serde::{Deserialize, Serialize};

use crate::fleet::percentile_us;

/// One assembled operation: its end-to-end record plus child stages.
#[derive(Debug, Clone)]
pub struct OpTrace {
    /// Trace id.
    pub trace: u64,
    /// Operation kind.
    pub op: OpKind,
    /// Shard the op ran against (`u16::MAX` when not shard-scoped).
    pub shard: u16,
    /// End-to-end duration (the `op` stage), nanoseconds.
    pub total_ns: u64,
    /// Child stage durations, nanoseconds.
    pub stages: Vec<(TraceStage, u64)>,
}

/// Partial op while assembling: the `op` header if seen, plus stages.
type PartialOp = (Option<(OpKind, u16, u64)>, Vec<(TraceStage, u64)>);

/// Assemble per-trace operations from a raw record stream. Traces
/// without an `op` stage (e.g. clipped by ring overflow) are dropped.
pub fn assemble_ops(records: &[TraceRecord]) -> Vec<OpTrace> {
    let mut by_trace: BTreeMap<u64, PartialOp> = BTreeMap::new();
    for r in records {
        let entry = by_trace.entry(r.trace).or_default();
        if r.stage == TraceStage::Op {
            entry.0 = Some((r.op, r.shard, r.dur_ns));
        } else {
            entry.1.push((r.stage, r.dur_ns));
        }
    }
    by_trace
        .into_iter()
        .filter_map(|(trace, (op, stages))| {
            op.map(|(op, shard, total_ns)| OpTrace {
                trace,
                op,
                shard,
                total_ns,
                stages,
            })
        })
        .collect()
}

/// Attribution of one `(op, shard)` group's tail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TailAttribution {
    /// Op kind name.
    pub op: String,
    /// Shard index, or `null` for the all-shards aggregate row.
    pub shard: Option<u16>,
    /// Operations in the group.
    pub count: u64,
    /// Exact q-quantile of end-to-end latency, microseconds.
    pub tail_us: u64,
    /// Operations at or above the quantile (the tail set).
    pub tail_count: u64,
    /// Per-stage share of tail-set op time, descending: `(stage,
    /// share, total_us)`.
    pub stage_shares: Vec<(String, f64, u64)>,
    /// The stage with the largest tail share, `""` when the tail set
    /// recorded no child stages.
    pub dominant_stage: String,
    /// Fraction of tail-set op wall time the child stages explain.
    pub coverage: f64,
}

fn attribute_group(op: OpKind, shard: Option<u16>, group: &[&OpTrace], q: f64) -> TailAttribution {
    let mut totals_us: Vec<u64> = group.iter().map(|t| t.total_ns / 1000).collect();
    totals_us.sort_unstable();
    let tail_us = percentile_us(&totals_us, q);
    let tail: Vec<&&OpTrace> = group
        .iter()
        .filter(|t| t.total_ns / 1000 >= tail_us)
        .collect();
    let mut stage_ns: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut op_ns = 0u64;
    for t in &tail {
        op_ns += t.total_ns;
        for (stage, dur) in &t.stages {
            *stage_ns.entry(stage.as_str()).or_default() += *dur;
        }
    }
    let explained: u64 = stage_ns.values().sum();
    let mut stage_shares: Vec<(String, f64, u64)> = stage_ns
        .iter()
        .map(|(stage, ns)| {
            (
                stage.to_string(),
                if explained == 0 {
                    0.0
                } else {
                    *ns as f64 / explained as f64
                },
                *ns / 1000,
            )
        })
        .collect();
    stage_shares.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
    TailAttribution {
        op: op.as_str().to_string(),
        shard,
        count: group.len() as u64,
        tail_us,
        tail_count: tail.len() as u64,
        dominant_stage: stage_shares
            .first()
            .map(|(s, _, _)| s.clone())
            .unwrap_or_default(),
        stage_shares,
        coverage: if op_ns == 0 {
            0.0
        } else {
            explained as f64 / op_ns as f64
        },
    }
}

/// Tail attribution at quantile `q` over a raw trace journal: one row
/// per `(op, shard)` plus one all-shards aggregate row per op kind
/// (`shard: null`), ordered by op then shard.
pub fn tail_attribution(records: &[TraceRecord], q: f64) -> Vec<TailAttribution> {
    let ops = assemble_ops(records);
    let mut by_group: BTreeMap<(&'static str, Option<u16>), Vec<&OpTrace>> = BTreeMap::new();
    for t in &ops {
        by_group
            .entry((t.op.as_str(), Some(t.shard)))
            .or_default()
            .push(t);
        by_group.entry((t.op.as_str(), None)).or_default().push(t);
    }
    by_group
        .into_iter()
        .map(|((_, shard), group)| attribute_group(group[0].op, shard, &group, q))
        .collect()
}

/// Per-trace accounting check plus aggregate stage coverage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reconciliation {
    /// Operations checked.
    pub ops: u64,
    /// Operations whose child stages exceeded the end-to-end duration
    /// beyond the allowed slack.
    pub overruns: u64,
    /// Aggregate fraction of op wall time explained by child stages.
    pub coverage: f64,
}

/// Verify that stage durations reconcile with end-to-end op latency:
/// per trace, `sum(child stages) <= total * (1 + rel_slack) +
/// abs_slack_ns` (stages in this service never overlap within one
/// trace). Returns the overrun count and the aggregate coverage.
pub fn reconcile(records: &[TraceRecord], rel_slack: f64, abs_slack_ns: u64) -> Reconciliation {
    let ops = assemble_ops(records);
    let mut overruns = 0u64;
    let mut total = 0u64;
    let mut explained = 0u64;
    for t in &ops {
        let children: u64 = t.stages.iter().map(|(_, d)| *d).sum();
        total += t.total_ns;
        explained += children.min(t.total_ns);
        let bound = t.total_ns as f64 * (1.0 + rel_slack) + abs_slack_ns as f64;
        if children as f64 > bound {
            overruns += 1;
        }
    }
    Reconciliation {
        ops: ops.len() as u64,
        overruns,
        coverage: if total == 0 {
            0.0
        } else {
            explained as f64 / total as f64
        },
    }
}

/// Render attribution rows as an aligned text table.
pub fn render_attribution(rows: &[TailAttribution], q: f64) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "tail attribution at p{:.4} ({} rows)\n",
        q * 100.0,
        rows.len()
    ));
    for row in rows {
        let shard = row
            .shard
            .map(|s| {
                if s == u16::MAX {
                    "-".to_string()
                } else {
                    s.to_string()
                }
            })
            .unwrap_or_else(|| "all".to_string());
        out.push_str(&format!(
            "  {:<8} shard {:>4}: n={:<6} tail {:>8} us (n_tail={}) dominant={} coverage={:.2}\n",
            row.op, shard, row.count, row.tail_us, row.tail_count, row.dominant_stage, row.coverage
        ));
        for (stage, share, us) in &row.stage_shares {
            out.push_str(&format!(
                "      {:<18} {:>6.1}%  {:>8} us\n",
                stage,
                share * 100.0,
                us
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(
        trace: u64,
        op: OpKind,
        stage: TraceStage,
        shard: u16,
        start_us: u64,
        dur_us: u64,
    ) -> TraceRecord {
        TraceRecord {
            trace,
            client: 1,
            op,
            stage,
            shard,
            start_ns: start_us * 1000,
            dur_ns: dur_us * 1000,
            link: 0,
        }
    }

    /// 9 fast uploads dominated by apply, 1 slow one dominated by fsync:
    /// the p90 tail must name wal_fsync.
    fn mixed_uploads() -> Vec<TraceRecord> {
        let mut records = Vec::new();
        for i in 0..9u64 {
            records.push(rec(i + 1, OpKind::Upload, TraceStage::Op, 0, i * 100, 50));
            records.push(rec(
                i + 1,
                OpKind::Upload,
                TraceStage::MemApply,
                0,
                i * 100,
                40,
            ));
            records.push(rec(
                i + 1,
                OpKind::Upload,
                TraceStage::WalFsync,
                0,
                i * 100 + 40,
                5,
            ));
        }
        records.push(rec(10, OpKind::Upload, TraceStage::Op, 0, 2000, 900));
        records.push(rec(10, OpKind::Upload, TraceStage::MemApply, 0, 2000, 40));
        records.push(rec(10, OpKind::Upload, TraceStage::WalFsync, 0, 2040, 850));
        records
    }

    #[test]
    fn tail_names_the_dominant_stage() {
        let rows = tail_attribution(&mixed_uploads(), 0.9);
        // One shard-0 row, one aggregate row.
        assert_eq!(rows.len(), 2);
        for row in &rows {
            assert_eq!(row.op, "upload");
            assert_eq!(row.count, 10);
            assert_eq!(row.dominant_stage, "wal_fsync", "slow trace is fsync-bound");
            // p90 interpolates between the 9th (50 µs) and 10th (900 µs)
            // order statistics, landing above every fast trace.
            assert!(row.tail_us > 50 && row.tail_us < 900);
            assert_eq!(row.tail_count, 1, "only the slow trace is in the tail");
            assert!(row.coverage > 0.9);
        }
        assert_eq!(rows[0].shard, None, "aggregate row first (BTreeMap order)");
        assert_eq!(rows[1].shard, Some(0));
        assert!(!render_attribution(&rows, 0.9).is_empty());
    }

    #[test]
    fn full_distribution_dominant_differs_from_tail() {
        // At q=0 every trace is in the "tail", and apply time (9×40 µs)
        // outweighs fsync (9×5 + 850 µs)... apply = 400, fsync = 895.
        // Use a sharper contrast: q=0 over only the fast traces.
        let fast: Vec<TraceRecord> = mixed_uploads()
            .into_iter()
            .filter(|r| r.trace != 10)
            .collect();
        let rows = tail_attribution(&fast, 0.0);
        assert_eq!(rows[0].dominant_stage, "mem_apply");
    }

    #[test]
    fn reconcile_flags_overruns() {
        let mut records = mixed_uploads();
        let ok = reconcile(&records, 0.05, 1000);
        assert_eq!(ok.ops, 10);
        assert_eq!(ok.overruns, 0);
        assert!(ok.coverage > 0.8 && ok.coverage <= 1.0);
        // A stage longer than its op is an accounting bug.
        records.push(rec(11, OpKind::Query, TraceStage::Op, 1, 5000, 10));
        records.push(rec(11, OpKind::Query, TraceStage::Scan, 1, 5000, 500));
        let bad = reconcile(&records, 0.05, 1000);
        assert_eq!(bad.overruns, 1);
    }

    #[test]
    fn traces_without_op_stage_are_dropped() {
        let records = vec![rec(1, OpKind::Query, TraceStage::Scan, 0, 0, 10)];
        assert!(assemble_ops(&records).is_empty());
        assert!(tail_attribution(&records, 0.99).is_empty());
    }
}
