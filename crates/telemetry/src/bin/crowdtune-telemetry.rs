//! Fleet telemetry CLI: ingest per-run journals into a telemetry store
//! and run typed queries over it.
//!
//! ```text
//! crowdtune-telemetry ingest <journal.jsonl> --app hypre --machine cori \
//!     [--owner alice] [--private] [--store results/telemetry.json]
//! crowdtune-telemetry query [--store results/telemetry.json] [--app hypre] \
//!     [--machine cori] [--tuner LCM-BO] [--stage fit] [--user alice]
//! crowdtune-telemetry attribute <trace.jsonl> [--q 0.99] [--op upload]
//! ```
//!
//! `ingest` appends to the store (creating it if absent) and prints how
//! many run records were added. `query` prints matching runs, or — with
//! `--stage` — an exact per-algorithm p50/p95 table for that stage.
//! `attribute` runs the tail-attribution pass over a request-trace
//! journal (written by `crowd_load --trace`): for each op kind and shard
//! it names the stage dominating the q-quantile tail, and fails if the
//! journal contains no assembled operations.

use std::path::Path;
use std::process::ExitCode;

use crowdtune_db::Access;
use crowdtune_obs::read_trace_journal;
use crowdtune_telemetry::{
    fleet_stage_percentiles, ingest_into, render_attribution, render_stage_table, tail_attribution,
    FleetQuery, IngestMeta, TelemetryCollection,
};

const DEFAULT_STORE: &str = "results/telemetry.json";

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn usage() -> String {
    "usage: crowdtune-telemetry <ingest|query|attribute> ...\n\
     \n\
     ingest    <journal.jsonl> --app <name> --machine <name>\n\
               [--owner <user>] [--private] [--store <path>]\n\
     query     [--store <path>] [--app <name>] [--machine <name>]\n\
               [--tuner <name>] [--stage <name>] [--user <name>]\n\
     attribute <trace.jsonl> [--q <quantile>] [--op <kind>]\n"
        .to_string()
}

fn load_store(path: &Path) -> Result<TelemetryCollection, String> {
    if path.exists() {
        TelemetryCollection::load(path)
            .map_err(|e| format!("failed to load store {}: {e}", path.display()))
    } else {
        Ok(TelemetryCollection::new())
    }
}

fn cmd_ingest(args: &[String]) -> Result<(), String> {
    let journal = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("ingest: missing journal path\n{}", usage()))?
        .clone();
    let app = arg_value(args, "--app").ok_or("ingest: --app is required")?;
    let machine = arg_value(args, "--machine").ok_or("ingest: --machine is required")?;
    let owner = arg_value(args, "--owner").unwrap_or_else(|| "anonymous".to_string());
    let store = arg_value(args, "--store").unwrap_or_else(|| DEFAULT_STORE.to_string());
    let mut meta = IngestMeta::public(&app, &machine, &owner);
    if args.iter().any(|a| a == "--private") {
        meta.access = Access::Private;
    }

    let store_path = Path::new(&store);
    let collection = load_store(store_path)?;
    let n = ingest_into(&collection, &journal, &meta)
        .map_err(|e| format!("failed to ingest {journal}: {e}"))?;
    if let Some(parent) = store_path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)
                .map_err(|e| format!("failed to create {}: {e}", parent.display()))?;
        }
    }
    collection
        .save(store_path)
        .map_err(|e| format!("failed to save store {store}: {e}"))?;
    println!(
        "ingested {n} run record(s) from {journal} into {store} ({} total)",
        collection.len()
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let store = arg_value(args, "--store").unwrap_or_else(|| DEFAULT_STORE.to_string());
    let collection = load_store(Path::new(&store))?;
    let mut query = FleetQuery::all();
    if let Some(app) = arg_value(args, "--app") {
        query = query.for_app(&app);
    }
    if let Some(machine) = arg_value(args, "--machine") {
        query = query.on_machine(&machine);
    }
    if let Some(tuner) = arg_value(args, "--tuner") {
        query = query.with_tuner(&tuner);
    }
    let user = arg_value(args, "--user");
    let user = user.as_deref();

    if let Some(stage) = arg_value(args, "--stage") {
        let groups = fleet_stage_percentiles(&collection, user, &query, &stage);
        if groups.is_empty() {
            return Err(format!(
                "no readable runs in {store} journaled stage `{stage}` for this query"
            ));
        }
        print!("{}", render_stage_table(&stage, &groups));
        return Ok(());
    }

    let records = collection.query(user, &query);
    println!(
        "{} readable run(s) in {store} match the query",
        records.len()
    );
    for rec in &records {
        println!(
            "  {:<28} app={:<10} machine={:<10} tuner={:<10} iters={:>4} best={}",
            rec.run,
            rec.app,
            rec.machine,
            rec.tuner,
            rec.iterations,
            rec.best.map_or("-".to_string(), |b| format!("{b:.6}")),
        );
    }
    Ok(())
}

fn cmd_attribute(args: &[String]) -> Result<(), String> {
    let trace = args
        .iter()
        .skip(1)
        .find(|a| !a.starts_with("--"))
        .ok_or_else(|| format!("attribute: missing trace journal path\n{}", usage()))?
        .clone();
    let q: f64 = match arg_value(args, "--q") {
        Some(s) => s.parse().map_err(|e| format!("--q: {e}"))?,
        None => 0.99,
    };
    let journal = read_trace_journal(&trace).map_err(|e| format!("{trace}: {e}"))?;
    let mut rows = tail_attribution(&journal.records, q);
    if let Some(op) = arg_value(args, "--op") {
        rows.retain(|r| r.op == op);
    }
    if rows.is_empty() {
        return Err(format!(
            "{trace}: no complete operations to attribute ({} records, {} dropped)",
            journal.records.len(),
            journal.dropped
        ));
    }
    print!("{}", render_attribution(&rows, q));
    if journal.dropped > 0 {
        println!(
            "note: {} trace record(s) were dropped at capture",
            journal.dropped
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("ingest") => cmd_ingest(&args),
        Some("query") => cmd_query(&args),
        Some("attribute") => cmd_attribute(&args),
        _ => Err(usage()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("crowdtune-telemetry: {msg}");
            ExitCode::FAILURE
        }
    }
}
