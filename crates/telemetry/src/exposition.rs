//! Dependency-free Prometheus-text-format exposition of the live
//! `crowdtune-obs` metrics.
//!
//! Two modes:
//!
//! - [`ExpositionServer`] — a tiny blocking HTTP/1.1 listener on its own
//!   thread. Every request (any path) gets a fresh snapshot of all
//!   registered counters and histograms in Prometheus text format
//!   (`text/plain; version=0.0.4`). The server only *reads* sharded
//!   atomics, so scraping mid-tune cannot perturb tuner output.
//! - [`write_oneshot`] — render one snapshot to a file, for CI scrapes
//!   and offline inspection without opening a socket.
//!
//! Counters become `crowdtune_<name>_total` counter families; histograms
//! become `crowdtune_<name>_ns` summary families (quantiles from the
//! log₂ buckets, interpolated) plus a `_ns_max` gauge. Metric names are
//! sanitized to `[a-zA-Z0-9_]`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crowdtune_obs::MetricsSnapshot;

/// Maps a dotted metric name (`gp.fit_restarts`) to a Prometheus-legal
/// base name (`crowdtune_gp_fit_restarts`).
pub fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 10);
    out.push_str("crowdtune_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Renders a metrics snapshot in Prometheus text exposition format
/// (version 0.0.4). Families are emitted in deterministic (sorted) name
/// order: counters first, then histogram summaries.
pub fn render_prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let base = format!("{}_total", sanitize(name));
        out.push_str(&format!("# TYPE {base} counter\n{base} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let base = format!("{}_ns", sanitize(name));
        out.push_str(&format!("# TYPE {base} summary\n"));
        out.push_str(&format!("{base}{{quantile=\"0.5\"}} {}\n", h.p50));
        out.push_str(&format!("{base}{{quantile=\"0.9\"}} {}\n", h.p90));
        out.push_str(&format!("{base}{{quantile=\"0.99\"}} {}\n", h.p99));
        out.push_str(&format!("{base}_sum {}\n", h.sum));
        out.push_str(&format!("{base}_count {}\n", h.count));
        out.push_str(&format!("# TYPE {base}_max gauge\n{base}_max {}\n", h.max));
    }
    out
}

/// Renders an SLO evaluation in Prometheus text exposition format: one
/// `crowdtune_slo_burn` gauge sample per objective window (labelled with
/// the objective and window length) and one `crowdtune_slo_breached`
/// gauge per objective (1 = breached). Deterministic sample order.
pub fn render_slo_prometheus(report: &crowdtune_obs::SloReport) -> String {
    let mut out = String::new();
    out.push_str("# TYPE crowdtune_slo_burn gauge\n");
    for o in &report.outcomes {
        for w in &o.windows {
            out.push_str(&format!(
                "crowdtune_slo_burn{{slo=\"{}\",window_us=\"{}\"}} {}\n",
                o.name, w.window_us, w.burn
            ));
        }
    }
    out.push_str("# TYPE crowdtune_slo_breached gauge\n");
    for o in &report.outcomes {
        out.push_str(&format!(
            "crowdtune_slo_breached{{slo=\"{}\"}} {}\n",
            o.name,
            u8::from(o.breached)
        ));
    }
    out
}

/// Renders a fleet [`QualityRollup`](crate::quality::QualityRollup) in
/// Prometheus text format: per-contributor gauges labelled by scenario
/// and contributor (`crowdtune_quality_contributor_scored`,
/// `..._flagged`, `..._quarantined`) and per-scenario calibration
/// gauges (`crowdtune_calibration_coverage90`,
/// `crowdtune_calibration_nll_per_point`). Deterministic sample order
/// (BTreeMap iteration).
pub fn render_quality_prometheus(rollup: &crate::quality::QualityRollup) -> String {
    type Pick = fn(&crate::quality::ContributorAggregate) -> u64;
    let families: [(&str, Pick); 3] = [
        ("crowdtune_quality_contributor_scored", |a| a.scored),
        ("crowdtune_quality_contributor_flagged", |a| a.flagged),
        ("crowdtune_quality_contributor_quarantined", |a| {
            a.quarantined
        }),
    ];
    let mut out = String::new();
    for (family, pick) in families {
        out.push_str(&format!("# TYPE {family} gauge\n"));
        for (scen, sq) in &rollup.scenarios {
            for (name, agg) in &sq.contributors {
                out.push_str(&format!(
                    "{family}{{scenario=\"{scen}\",contributor=\"{name}\"}} {}\n",
                    pick(agg)
                ));
            }
        }
    }
    out.push_str("# TYPE crowdtune_calibration_coverage90 gauge\n");
    for (scen, sq) in &rollup.scenarios {
        if let Some(cov) = sq.coverage90 {
            out.push_str(&format!(
                "crowdtune_calibration_coverage90{{scenario=\"{scen}\"}} {cov}\n"
            ));
        }
    }
    out.push_str("# TYPE crowdtune_calibration_nll_per_point gauge\n");
    for (scen, sq) in &rollup.scenarios {
        if let Some(nll) = sq.nll_pp {
            out.push_str(&format!(
                "crowdtune_calibration_nll_per_point{{scenario=\"{scen}\"}} {nll}\n"
            ));
        }
    }
    out
}

/// Renders the current process-global metrics to `path`, creating parent
/// directories as needed — the `--oneshot` CI mode.
pub fn write_oneshot<P: AsRef<Path>>(path: P) -> std::io::Result<()> {
    let body = render_prometheus(&crowdtune_obs::snapshot());
    if let Some(parent) = path.as_ref().parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, body)
}

fn serve_one(stream: &mut TcpStream) {
    // Read (and discard) the request head; bounded so a slow client
    // cannot wedge the exposition thread.
    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = render_prometheus(&crowdtune_obs::snapshot());
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

/// A blocking HTTP metrics endpoint on a dedicated thread.
#[derive(Debug)]
pub struct ExpositionServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ExpositionServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
    /// serving metrics on a background thread.
    pub fn start(addr: &str) -> std::io::Result<ExpositionServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("crowdtune-exposition".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if stop_flag.load(Ordering::Relaxed) {
                        break;
                    }
                    if let Ok(mut stream) = conn {
                        serve_one(&mut stream);
                    }
                }
            })?;
        Ok(ExpositionServer {
            addr: local,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    fn stop_inner(&mut self) {
        if let Some(handle) = self.handle.take() {
            self.stop.store(true, Ordering::Relaxed);
            // Unblock the accept loop with one throwaway connection.
            let _ = TcpStream::connect(self.addr);
            let _ = handle.join();
        }
    }

    /// Stops the listener thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_inner();
    }
}

impl Drop for ExpositionServer {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// Fetches `http://{addr}/metrics` with a plain blocking socket and
/// returns the raw HTTP response. Used by tests and the smoke driver; a
/// real deployment would point Prometheus at the endpoint instead.
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_to_prometheus_charset() {
        assert_eq!(sanitize("gp.fit_restarts"), "crowdtune_gp_fit_restarts");
        assert_eq!(sanitize("db query"), "crowdtune_db_query");
        assert!(sanitize("a.b-c")
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_'));
    }

    #[test]
    fn render_emits_counter_and_summary_families() {
        crowdtune_obs::set_metrics_enabled(true);
        crowdtune_obs::count("expo.test_counter", 3);
        crowdtune_obs::observe("expo.test_hist", 1500);
        crowdtune_obs::observe("expo.test_hist", 2500);
        let text = render_prometheus(&crowdtune_obs::snapshot());
        crowdtune_obs::set_metrics_enabled(false);

        assert!(text.contains("# TYPE crowdtune_expo_test_counter_total counter"));
        assert!(text.contains("crowdtune_expo_test_counter_total 3"));
        assert!(text.contains("# TYPE crowdtune_expo_test_hist_ns summary"));
        assert!(text.contains("crowdtune_expo_test_hist_ns_count 2"));
        assert!(text.contains("crowdtune_expo_test_hist_ns_sum 4000"));
        assert!(text.contains("quantile=\"0.5\""));
        // Every non-comment line is `name[{labels}] value` with a numeric
        // value — the shape Prometheus's text parser requires.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("space-separated");
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn quality_rollup_renders_labelled_gauges() {
        let mut roll = crate::quality::QualityRollup::new();
        roll.ingest(
            "hypre",
            &[
                crowdtune_obs::Event::QualityScore {
                    iter: 0,
                    doc: 1,
                    contributor: "mallory".into(),
                    residual: Some(10.0),
                    score: Some(12.0),
                    flagged: true,
                    duplicate: false,
                },
                crowdtune_obs::Event::Calibration {
                    model: "gp".into(),
                    points: 8,
                    coverage90: Some(0.875),
                    nll_pp: Some(1.5),
                    drift: None,
                    best: None,
                },
            ],
        );
        let text = render_quality_prometheus(&roll);
        assert!(text.contains("# TYPE crowdtune_quality_contributor_scored gauge"));
        assert!(text.contains(
            "crowdtune_quality_contributor_flagged{scenario=\"hypre\",contributor=\"mallory\"} 1"
        ));
        assert!(text.contains("crowdtune_calibration_coverage90{scenario=\"hypre\"} 0.875"));
        assert!(text.contains("crowdtune_calibration_nll_per_point{scenario=\"hypre\"} 1.5"));
        // Same line-shape contract as the main exposition.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (_, value) = line.rsplit_once(' ').expect("space-separated");
            value.parse::<f64>().expect("numeric sample value");
        }
    }

    #[test]
    fn server_serves_fresh_snapshots() {
        crowdtune_obs::set_metrics_enabled(true);
        let server = ExpositionServer::start("127.0.0.1:0").expect("bind");
        crowdtune_obs::count("expo.live_counter", 1);
        let first = scrape(server.local_addr()).expect("scrape 1");
        assert!(first.starts_with("HTTP/1.1 200 OK"));
        assert!(first.contains("text/plain; version=0.0.4"));
        assert!(first.contains("crowdtune_expo_live_counter_total"));

        // The endpoint snapshots at request time, not at server start.
        crowdtune_obs::count("expo.live_counter", 41);
        let second = scrape(server.local_addr()).expect("scrape 2");
        crowdtune_obs::set_metrics_enabled(false);
        let line = second
            .lines()
            .find(|l| l.starts_with("crowdtune_expo_live_counter_total "))
            .expect("counter line");
        let value: u64 = line.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(value >= 42, "second scrape must see the newer count");
        server.shutdown();
    }
}
