//! Typed fleet queries over the telemetry collection: exact per-stage
//! percentiles grouped by TLA algorithm.
//!
//! Run records carry *raw* per-stage durations, so percentiles here are
//! exact order statistics (with linear interpolation between ranks), not
//! log₂-bucket approximations like the live process histograms.

use std::collections::BTreeMap;

use crowdtune_db::{FleetQuery, RunRecord, TelemetryCollection};
use serde::{Deserialize, Serialize};

/// Exact duration statistics for one stage within one group of runs.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StagePercentiles {
    /// Runs contributing at least one sample.
    pub runs: u64,
    /// Total duration samples pooled across those runs.
    pub samples: u64,
    /// Mean duration in microseconds.
    pub mean_us: f64,
    /// Median duration in microseconds.
    pub p50_us: u64,
    /// 95th-percentile duration in microseconds.
    pub p95_us: u64,
    /// Largest duration in microseconds.
    pub max_us: u64,
}

/// Exact quantile of a **sorted** sample set, linearly interpolating
/// between adjacent order statistics. Returns 0 on an empty slice.
pub fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let q = q.clamp(0.0, 1.0);
    let rank = q * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    let est = sorted[lo] as f64 + frac * (sorted[hi] as f64 - sorted[lo] as f64);
    est.round() as u64
}

/// Pools the named stage's durations across `records`, grouped by tuner
/// (TLA algorithm), and summarizes each group. Groups whose runs never
/// journaled the stage are omitted.
pub fn stage_percentiles_by_tuner(
    records: &[RunRecord],
    stage: &str,
) -> BTreeMap<String, StagePercentiles> {
    let mut pooled: BTreeMap<String, (u64, Vec<u64>)> = BTreeMap::new();
    for rec in records {
        if let Some(samples) = rec.stage_us.get(stage) {
            if samples.is_empty() {
                continue;
            }
            let entry = pooled.entry(rec.tuner.clone()).or_default();
            entry.0 += 1;
            entry.1.extend_from_slice(samples);
        }
    }
    pooled
        .into_iter()
        .map(|(tuner, (runs, mut samples))| {
            samples.sort_unstable();
            let sum: u64 = samples.iter().sum();
            let stats = StagePercentiles {
                runs,
                samples: samples.len() as u64,
                mean_us: sum as f64 / samples.len() as f64,
                p50_us: percentile_us(&samples, 0.50),
                p95_us: percentile_us(&samples, 0.95),
                max_us: *samples.last().expect("non-empty"),
            };
            (tuner, stats)
        })
        .collect()
}

/// Access-controlled fleet query + per-stage summary in one call: every
/// record `user` may read that matches `query`, with the named stage
/// summarized per algorithm.
pub fn fleet_stage_percentiles(
    collection: &TelemetryCollection,
    user: Option<&str>,
    query: &FleetQuery,
    stage: &str,
) -> BTreeMap<String, StagePercentiles> {
    stage_percentiles_by_tuner(&collection.query(user, query), stage)
}

/// Renders a per-algorithm stage summary as an aligned human table.
pub fn render_stage_table(stage: &str, groups: &BTreeMap<String, StagePercentiles>) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "stage `{stage}` by algorithm\n  {:<24} {:>5} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
        "algorithm", "runs", "samples", "mean_us", "p50_us", "p95_us", "max_us"
    ));
    for (tuner, s) in groups {
        out.push_str(&format!(
            "  {:<24} {:>5} {:>8} {:>10.1} {:>10} {:>10} {:>10}\n",
            tuner, s.runs, s.samples, s.mean_us, s.p50_us, s.p95_us, s.max_us
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowdtune_db::Access;

    fn record(tuner: &str, fit_us: Vec<u64>) -> RunRecord {
        RunRecord {
            id: 0,
            run: format!("{tuner}-r"),
            app: "demo".into(),
            machine: "local".into(),
            tuner: tuner.into(),
            dim: 2,
            budget: 8,
            seed: 1,
            iterations: 8,
            failures: 0,
            best: Some(1.0),
            event_counts: BTreeMap::new(),
            stage_us: [("fit".to_string(), fit_us)].into_iter().collect(),
            profile: BTreeMap::new(),
            owner: "alice".into(),
            access: Access::Public,
        }
    }

    #[test]
    fn percentiles_are_exact_order_statistics() {
        assert_eq!(percentile_us(&[], 0.5), 0);
        assert_eq!(percentile_us(&[7], 0.5), 7);
        assert_eq!(percentile_us(&[10, 20], 0.5), 15);
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_us(&sorted, 0.0), 1);
        assert_eq!(percentile_us(&sorted, 1.0), 100);
        assert_eq!(percentile_us(&sorted, 0.50), 51); // rank 49.5 → 50.5 → 51 rounded
        assert_eq!(percentile_us(&sorted, 0.95), 95); // rank 94.05
    }

    #[test]
    fn grouping_pools_samples_per_algorithm() {
        let records = vec![
            record("NoTLA", vec![100, 300]),
            record("NoTLA", vec![200]),
            record("LCM-BO", vec![1000, 2000, 3000]),
            record("LCM-BO", vec![]),
        ];
        let groups = stage_percentiles_by_tuner(&records, "fit");
        assert_eq!(groups.len(), 2);
        let notla = &groups["NoTLA"];
        assert_eq!(notla.runs, 2);
        assert_eq!(notla.samples, 3);
        assert_eq!(notla.p50_us, 200);
        assert_eq!(notla.max_us, 300);
        let lcm = &groups["LCM-BO"];
        assert_eq!(lcm.runs, 1, "empty sample lists contribute no run");
        assert_eq!(lcm.p50_us, 2000);
        assert!(groups_missing_stage_are_empty(&records));
        let table = render_stage_table("fit", &groups);
        assert!(table.contains("NoTLA"));
        assert!(table.contains("p95_us"));
    }

    fn groups_missing_stage_are_empty(records: &[RunRecord]) -> bool {
        stage_percentiles_by_tuner(records, "no_such_stage").is_empty()
    }
}
