//! Journal ingestion: per-run JSONL event journals → indexed
//! [`RunRecord`]s for the fleet-telemetry collection.
//!
//! A journal is a flat event stream; a run is the slice between a
//! `runstart` and its `runend`. The ingester walks the stream once,
//! distilling each run into one record: identity from `runstart`,
//! outcome from `runend`, raw per-stage durations from every timed event
//! in between, and the collapsed-stack profile from the run's `profile`
//! event. Events *outside* a run window (the database round trip a
//! driver performs before tuning, a jitter probe) are attributed to the
//! **next** run that starts — they are part of that run's session — and
//! dropped if no run follows.
//!
//! Journals do not know what application or machine produced them, so
//! the caller supplies that (plus ownership and access control) via
//! [`IngestMeta`].

use std::collections::BTreeMap;
use std::path::Path;

use crowdtune_db::{Access, RunRecord, TelemetryCollection};
use crowdtune_obs::{read_journal, Event, JournalError};

/// Run metadata the journal itself cannot know, supplied at ingest time.
#[derive(Debug, Clone)]
pub struct IngestMeta {
    /// Application the journal's runs tuned.
    pub app: String,
    /// Machine the runs executed on.
    pub machine: String,
    /// Username the records will be owned by.
    pub owner: String,
    /// Access control applied to every ingested record.
    pub access: Access,
}

impl IngestMeta {
    /// Metadata with public access (the common crowd-contribution case).
    pub fn public(app: &str, machine: &str, owner: &str) -> Self {
        IngestMeta {
            app: app.to_string(),
            machine: machine.to_string(),
            owner: owner.to_string(),
            access: Access::Public,
        }
    }
}

/// Stage name and duration carried by a timed event, `None` for untimed
/// kinds. Stage names match `crowdtune-obs`'s report aggregation.
fn stage_of(ev: &Event) -> Option<(&'static str, u64)> {
    match ev {
        Event::Iteration { duration_us, .. } => Some(("iteration", *duration_us)),
        Event::Fit { duration_us, .. } => Some(("fit", *duration_us)),
        Event::Acquisition { duration_us, .. } => Some(("acquisition", *duration_us)),
        Event::DbQuery { duration_us, .. } => Some(("db_query", *duration_us)),
        Event::Upload { duration_us, .. } => Some(("db_upload", *duration_us)),
        Event::Saltelli { duration_us, .. } => Some(("saltelli", *duration_us)),
        Event::Sobol { duration_us, .. } => Some(("sobol", *duration_us)),
        Event::RunEnd { duration_us, .. } => Some(("run", *duration_us)),
        _ => None,
    }
}

/// Event counts and stage durations accumulated either inside a run or in
/// the gap before one.
#[derive(Debug, Default)]
struct Accumulator {
    event_counts: BTreeMap<String, u64>,
    stage_us: BTreeMap<String, Vec<u64>>,
    profile: BTreeMap<String, u64>,
}

impl Accumulator {
    fn absorb(&mut self, ev: &Event) {
        *self.event_counts.entry(ev.kind().to_string()).or_insert(0) += 1;
        if let Some((stage, us)) = stage_of(ev) {
            self.stage_us.entry(stage.to_string()).or_default().push(us);
        }
        if let Event::Profile { folded } = ev {
            for (path, ns) in folded {
                *self.profile.entry(path.clone()).or_insert(0) += ns;
            }
        }
    }

    fn merge_into(self, other: &mut Accumulator) {
        for (k, n) in self.event_counts {
            *other.event_counts.entry(k).or_insert(0) += n;
        }
        for (stage, mut samples) in self.stage_us {
            other
                .stage_us
                .entry(stage)
                .or_default()
                .append(&mut samples);
        }
        for (path, ns) in self.profile {
            *other.profile.entry(path).or_insert(0) += ns;
        }
    }
}

/// Distills a parsed event stream into one [`RunRecord`] per completed
/// run. A trailing run with no `runend` (the process died mid-tune) is
/// still emitted, with outcome fields left at their defaults.
pub fn ingest_events(events: &[Event], meta: &IngestMeta) -> Vec<RunRecord> {
    let mut records = Vec::new();
    let mut pending = Accumulator::default();
    // (identity fields, accumulator) of the currently open run.
    let mut open: Option<(RunRecord, Accumulator)> = None;

    let close = |records: &mut Vec<RunRecord>, rec: RunRecord, acc: Accumulator| {
        let mut rec = rec;
        rec.event_counts = acc.event_counts;
        rec.stage_us = acc.stage_us;
        rec.profile = acc.profile;
        records.push(rec);
    };

    for ev in events {
        if let Event::RunStart {
            run,
            tuner,
            dim,
            budget,
            seed,
        } = ev
        {
            // A new run start closes any run left open by a crashed writer.
            if let Some((rec, acc)) = open.take() {
                close(&mut records, rec, acc);
            }
            let rec = RunRecord {
                id: 0,
                run: run.clone(),
                app: meta.app.clone(),
                machine: meta.machine.clone(),
                tuner: tuner.clone(),
                dim: *dim,
                budget: *budget,
                seed: *seed,
                iterations: 0,
                failures: 0,
                best: None,
                event_counts: BTreeMap::new(),
                stage_us: BTreeMap::new(),
                profile: BTreeMap::new(),
                owner: meta.owner.clone(),
                access: meta.access.clone(),
            };
            let mut acc = Accumulator::default();
            std::mem::take(&mut pending).merge_into(&mut acc);
            acc.absorb(ev);
            open = Some((rec, acc));
            continue;
        }

        match open.as_mut() {
            Some((rec, acc)) => {
                acc.absorb(ev);
                if let Event::RunEnd {
                    iterations,
                    failures,
                    best,
                    ..
                } = ev
                {
                    rec.iterations = *iterations;
                    rec.failures = *failures;
                    rec.best = *best;
                    let (rec, acc) = open.take().expect("run open");
                    close(&mut records, rec, acc);
                }
            }
            None => pending.absorb(ev),
        }
    }
    if let Some((rec, acc)) = open.take() {
        close(&mut records, rec, acc);
    }
    records
}

/// Reads and schema-checks a journal, then distills it into run records.
pub fn ingest_journal<P: AsRef<Path>>(
    path: P,
    meta: &IngestMeta,
) -> Result<Vec<RunRecord>, JournalError> {
    Ok(ingest_events(&read_journal(path)?, meta))
}

/// Ingests a journal directly into a collection; returns how many run
/// records were inserted.
pub fn ingest_into<P: AsRef<Path>>(
    collection: &TelemetryCollection,
    path: P,
    meta: &IngestMeta,
) -> Result<usize, JournalError> {
    let records = ingest_journal(path, meta)?;
    let n = records.len();
    for rec in records {
        collection.insert(rec);
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_events(tuner: &str, seed: u64, fit_us: &[u64]) -> Vec<Event> {
        let mut ev = vec![Event::RunStart {
            run: format!("{tuner}-seed{seed}"),
            tuner: tuner.to_string(),
            dim: 2,
            budget: fit_us.len() as u64,
            seed,
        }];
        for (i, &us) in fit_us.iter().enumerate() {
            ev.push(Event::Fit {
                model: "gp".into(),
                points: 10,
                restarts: 2,
                nll: Some(1.0),
                duration_us: us,
                fallback: false,
            });
            ev.push(Event::Iteration {
                iter: i as u64,
                point: vec![0.5, 0.5],
                value: Some(1.0),
                ok: true,
                proposed_by: tuner.to_string(),
                best: Some(1.0),
                duration_us: us + 5,
            });
        }
        ev.push(Event::Profile {
            folded: [
                ("tune".to_string(), 1000u64),
                ("tune;propose;gp_fit".to_string(), 600),
            ]
            .into_iter()
            .collect(),
        });
        ev.push(Event::RunEnd {
            iterations: fit_us.len() as u64,
            failures: 0,
            best: Some(0.75),
            duration_us: 9000,
        });
        ev
    }

    #[test]
    fn splits_runs_and_collects_stages() {
        let meta = IngestMeta::public("demo", "local", "alice");
        let mut events = run_events("NoTLA", 1, &[100, 200]);
        events.extend(run_events("LCM-BO", 2, &[300]));
        let records = ingest_events(&events, &meta);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].tuner, "NoTLA");
        assert_eq!(records[0].stage_us["fit"], vec![100, 200]);
        assert_eq!(records[0].best, Some(0.75));
        assert_eq!(records[0].profile["tune;propose;gp_fit"], 600);
        assert_eq!(records[1].tuner, "LCM-BO");
        assert_eq!(records[1].stage_us["fit"], vec![300]);
        assert_eq!(records[1].event_counts["iteration"], 1);
    }

    #[test]
    fn preamble_events_attach_to_the_next_run() {
        let meta = IngestMeta::public("demo", "local", "alice");
        let mut events = vec![Event::DbQuery {
            query: "demo".into(),
            scanned: 40,
            returned: 38,
            denied: 1,
            cache_hits: 0,
            cache_misses: 1,
            stale_served: 0,
            duration_us: 55,
        }];
        events.extend(run_events("NoTLA", 1, &[100]));
        let records = ingest_events(&events, &meta);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].stage_us["db_query"], vec![55]);
        assert_eq!(records[0].event_counts["dbquery"], 1);
    }

    #[test]
    fn unterminated_run_is_still_emitted() {
        let meta = IngestMeta::public("demo", "local", "alice");
        let mut events = run_events("NoTLA", 1, &[100]);
        events.truncate(events.len() - 2); // drop profile + runend
        let records = ingest_events(&events, &meta);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].iterations, 0, "no runend: outcome unknown");
        assert_eq!(records[0].stage_us["fit"], vec![100]);
    }
}
