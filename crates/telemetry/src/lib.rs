//! `crowdtune-telemetry` — fleet-level observability for crowdtune.
//!
//! The per-process `crowdtune-obs` layer answers "what did *this* run
//! do": spans, counters, histograms, and a JSONL journal. This crate
//! lifts those artifacts to the fleet level, the vantage point the
//! crowd-tuning paper argues matters — many users, many machines, many
//! task-learning algorithms, one shared history:
//!
//! - [`ingest`] parses per-run journals into indexed [`RunRecord`]s
//!   stored in the embedded database's telemetry collection, carrying
//!   run identity, per-stage raw durations, event counts, and the
//!   collapsed-stack profile.
//! - [`fleet`] provides typed queries over those records: "all `hypre`
//!   runs on machine X", "fit-time p50/p95 grouped by TLA algorithm" —
//!   exact order-statistic percentiles, honoring per-record access
//!   control.
//! - [`quality`] rolls per-run quality/calibration events up into
//!   per-scenario, per-contributor data-quality aggregates — which
//!   contributor is being flagged, which surrogate is drifting.
//! - [`exposition`] serves the live process metrics in Prometheus text
//!   format from a dependency-free blocking HTTP listener (or a
//!   `--oneshot` file for CI), without perturbing tuner determinism.
//!
//! The `crowdtune-telemetry` binary wires ingestion and querying into a
//! small CLI; `--expose`/`--expose-oneshot` flags on the bench smoke
//! driver exercise the exposition path mid-tune.

#![warn(missing_docs)]

pub mod attribution;
pub mod exposition;
pub mod fleet;
pub mod ingest;
pub mod quality;

pub use attribution::{
    assemble_ops, reconcile, render_attribution, tail_attribution, OpTrace, Reconciliation,
    TailAttribution,
};
pub use crowdtune_db::{Access, FleetQuery, RunRecord, TelemetryCollection};
pub use exposition::{
    render_prometheus, render_quality_prometheus, render_slo_prometheus, sanitize, scrape,
    write_oneshot, ExpositionServer,
};
pub use fleet::{
    fleet_stage_percentiles, percentile_us, render_stage_table, stage_percentiles_by_tuner,
    StagePercentiles,
};
pub use ingest::{ingest_events, ingest_into, ingest_journal, IngestMeta};
pub use quality::{render_quality_rollup, ContributorAggregate, QualityRollup, ScenarioQuality};
