//! Fleet-level data-quality rollup: per-scenario, per-contributor
//! aggregates distilled from the quality and calibration events that
//! `crowdtune-core`'s scorer and the tuner loop journal.
//!
//! The per-run `crowdtune-obs` report answers "how clean was *this*
//! run's data". This module lifts that to the fleet vantage point the
//! crowd model needs: many contributors uploading into one shared
//! history, where a single noisy machine or misconfigured harness can
//! quietly poison every downstream surrogate. The rollup ingests any
//! number of journals (one per run/scenario), keyed by a
//! caller-supplied scenario label, and answers:
//!
//! - which contributors are being flagged, and at what rate;
//! - which scenario's surrogate is worst-calibrated (coverage drift);
//! - who the single worst offender across the whole fleet is.
//!
//! Everything here is read-only over journals: ingesting has no effect
//! on tuning, storage, or the journals themselves.

use std::collections::BTreeMap;

use crowdtune_obs::Event;

/// Quality aggregate for one contributor within one scenario.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContributorAggregate {
    /// Records accepted from this contributor (from `upload` events).
    pub uploads: u64,
    /// Observations scored by the quality scorer.
    pub scored: u64,
    /// Observations whose standardized residual crossed the outlier
    /// threshold.
    pub flagged: u64,
    /// Duplicate-configuration disagreements attributed to this
    /// contributor.
    pub duplicates: u64,
    /// Quarantine events (observe-only flag lifecycle) for this
    /// contributor's records.
    pub quarantined: u64,
    /// Largest standardized-residual score seen, `None` until a scored
    /// observation carries one.
    pub worst_score: Option<f64>,
}

impl ContributorAggregate {
    /// Fraction of scored observations that were flagged, `None` before
    /// any observation was scored.
    pub fn flag_rate(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.flagged as f64 / self.scored as f64)
    }

    /// Combined severity used for ranking: flagged + quarantined.
    pub fn severity(&self) -> u64 {
        self.flagged + self.quarantined
    }
}

/// Quality rollup for one scenario (one tuning problem / journal).
#[derive(Debug, Clone, Default)]
pub struct ScenarioQuality {
    /// Per-contributor aggregates, keyed by contributor name.
    pub contributors: BTreeMap<String, ContributorAggregate>,
    /// Total observations scored in this scenario.
    pub scored: u64,
    /// Total online outlier flags in this scenario.
    pub flagged: u64,
    /// Total quarantine markers in this scenario. Every flag — online,
    /// duplicate, or final-sweep — emits one, so this is the complete
    /// count of records withheld from trust.
    pub quarantined: u64,
    /// Held-out calibration points scored by the surrogate (from the
    /// last `calibration` event).
    pub calibration_points: u64,
    /// Last observed 90%-interval coverage.
    pub coverage90: Option<f64>,
    /// Last observed predictive NLL per point.
    pub nll_pp: Option<f64>,
    /// Last observed NLL-per-point drift between refits.
    pub drift: Option<f64>,
}

impl ScenarioQuality {
    /// Scenario-wide outlier rate, `None` before any scored observation.
    pub fn outlier_rate(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.flagged as f64 / self.scored as f64)
    }

    /// Absolute deviation of 90%-interval coverage from its nominal
    /// 0.90, `None` before any calibration event.
    pub fn coverage_error(&self) -> Option<f64> {
        self.coverage90.map(|c| (c - 0.90).abs())
    }

    fn absorb(&mut self, ev: &Event) {
        match ev {
            Event::Upload {
                accepted,
                contributor,
                ..
            } if !contributor.is_empty() => {
                self.contributors
                    .entry(contributor.clone())
                    .or_default()
                    .uploads += accepted;
            }
            Event::QualityScore {
                contributor,
                score,
                flagged,
                duplicate,
                ..
            } => {
                self.scored += 1;
                if *flagged {
                    self.flagged += 1;
                }
                let agg = self.contributors.entry(contributor.clone()).or_default();
                agg.scored += 1;
                if *flagged {
                    agg.flagged += 1;
                }
                if *duplicate {
                    agg.duplicates += 1;
                }
                if let Some(s) = score {
                    if agg.worst_score.is_none_or(|w| *s > w) {
                        agg.worst_score = Some(*s);
                    }
                }
            }
            Event::Quarantine { contributor, .. } => {
                self.quarantined += 1;
                self.contributors
                    .entry(contributor.clone())
                    .or_default()
                    .quarantined += 1;
            }
            Event::Calibration {
                points,
                coverage90,
                nll_pp,
                drift,
                ..
            } => {
                // Calibration events are cumulative snapshots; keep the
                // richest (latest) one.
                self.calibration_points = self.calibration_points.max(*points);
                if coverage90.is_some() {
                    self.coverage90 = *coverage90;
                }
                if nll_pp.is_some() {
                    self.nll_pp = *nll_pp;
                }
                if drift.is_some() {
                    self.drift = *drift;
                }
            }
            _ => {}
        }
    }
}

/// Fleet-wide quality rollup over any number of scenario journals.
#[derive(Debug, Clone, Default)]
pub struct QualityRollup {
    /// Per-scenario rollups, keyed by the caller-supplied label.
    pub scenarios: BTreeMap<String, ScenarioQuality>,
}

impl QualityRollup {
    /// An empty rollup.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one journal's events into the rollup under `scenario`.
    /// Ingesting the same scenario twice accumulates (multiple runs of
    /// one problem roll up together).
    pub fn ingest(&mut self, scenario: &str, events: &[Event]) {
        let sq = self.scenarios.entry(scenario.to_string()).or_default();
        for ev in events {
            sq.absorb(ev);
        }
    }

    /// The single worst contributor across the fleet by severity
    /// (flagged + quarantined), ties broken toward the lexically first
    /// scenario/contributor. `None` when nobody has been flagged.
    pub fn worst_contributor(&self) -> Option<(&str, &str, &ContributorAggregate)> {
        self.scenarios
            .iter()
            .flat_map(|(scen, sq)| {
                sq.contributors
                    .iter()
                    .map(move |(name, agg)| (scen.as_str(), name.as_str(), agg))
            })
            .filter(|(_, _, agg)| agg.severity() > 0)
            .max_by(|a, b| {
                a.2.severity()
                    .cmp(&b.2.severity())
                    // On ties prefer the lexically first, so reverse the
                    // key ordering fed to max_by.
                    .then_with(|| (b.0, b.1).cmp(&(a.0, a.1)))
            })
    }
}

/// Render the rollup as a human-readable fleet quality table.
pub fn render_quality_rollup(r: &QualityRollup) -> String {
    let mut out = String::new();
    out.push_str("fleet data quality\n");
    if r.scenarios.is_empty() {
        out.push_str("  (no scenarios ingested)\n");
        return out;
    }
    for (scen, sq) in &r.scenarios {
        out.push_str(&format!(
            "  scenario {scen}: {} scored, {} flagged online, {} quarantined",
            sq.scored, sq.flagged, sq.quarantined
        ));
        if let Some(rate) = sq.outlier_rate() {
            out.push_str(&format!(" ({:.1}% outlier rate)", rate * 100.0));
        }
        out.push('\n');
        if let Some(cov) = sq.coverage90 {
            out.push_str(&format!(
                "    calibration: coverage@90 {:.3} over {} points",
                cov, sq.calibration_points
            ));
            if let Some(nll) = sq.nll_pp {
                out.push_str(&format!(", nll/pt {nll:.3}"));
            }
            if let Some(d) = sq.drift {
                out.push_str(&format!(", drift {d:+.3}"));
            }
            out.push('\n');
        }
        for (name, agg) in &sq.contributors {
            out.push_str(&format!(
                "    {name}: {} uploads, {} scored, {} flagged, {} duplicates, {} quarantined",
                agg.uploads, agg.scored, agg.flagged, agg.duplicates, agg.quarantined
            ));
            if let Some(w) = agg.worst_score {
                out.push_str(&format!(", worst score {w:.2}"));
            }
            out.push('\n');
        }
    }
    if let Some((scen, name, agg)) = r.worst_contributor() {
        out.push_str(&format!(
            "  worst contributor: {name} (scenario {scen}, severity {})\n",
            agg.severity()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn score(contributor: &str, score: Option<f64>, flagged: bool, duplicate: bool) -> Event {
        Event::QualityScore {
            iter: 0,
            doc: 0,
            contributor: contributor.to_string(),
            residual: score,
            score,
            flagged,
            duplicate,
        }
    }

    #[test]
    fn rollup_aggregates_per_scenario_and_contributor() {
        let mut roll = QualityRollup::new();
        roll.ingest(
            "hypre",
            &[
                Event::Upload {
                    accepted: 3,
                    rejected: 0,
                    contributor: "alice".into(),
                    batch: 1,
                    duration_us: 10,
                },
                score("alice", Some(0.5), false, false),
                score("mallory", Some(12.0), true, false),
                score("mallory", Some(9.0), true, true),
                Event::Quarantine {
                    iter: 1,
                    doc: 2,
                    contributor: "mallory".into(),
                    reason: "outlier".into(),
                    state: "flagged".into(),
                },
                Event::Calibration {
                    model: "gp".into(),
                    points: 16,
                    coverage90: Some(0.875),
                    nll_pp: Some(1.2),
                    drift: Some(-0.1),
                    best: Some(0.4),
                },
            ],
        );
        let sq = &roll.scenarios["hypre"];
        assert_eq!(sq.scored, 3);
        assert_eq!(sq.flagged, 2);
        assert!((sq.outlier_rate().unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((sq.coverage_error().unwrap() - 0.025).abs() < 1e-12);
        assert_eq!(sq.calibration_points, 16);
        assert_eq!(sq.contributors["alice"].uploads, 3);
        assert_eq!(sq.contributors["alice"].flagged, 0);
        let m = &sq.contributors["mallory"];
        assert_eq!(m.scored, 2);
        assert_eq!(m.flagged, 2);
        assert_eq!(m.duplicates, 1);
        assert_eq!(m.quarantined, 1);
        assert_eq!(m.worst_score, Some(12.0));
        assert_eq!(m.severity(), 3);
        assert!((m.flag_rate().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn worst_contributor_spans_scenarios() {
        let mut roll = QualityRollup::new();
        roll.ingest("a", &[score("alice", Some(9.0), true, false)]);
        roll.ingest(
            "b",
            &[
                score("mallory", Some(20.0), true, false),
                score("mallory", Some(21.0), true, false),
            ],
        );
        let (scen, name, agg) = roll.worst_contributor().expect("flagged contributors");
        assert_eq!((scen, name), ("b", "mallory"));
        assert_eq!(agg.severity(), 2);
        let text = render_quality_rollup(&roll);
        assert!(text.contains("worst contributor: mallory"));
    }

    #[test]
    fn clean_fleet_has_no_worst_contributor() {
        let mut roll = QualityRollup::new();
        roll.ingest("a", &[score("alice", Some(0.1), false, false)]);
        assert!(roll.worst_contributor().is_none());
        assert!(render_quality_rollup(&roll).contains("scenario a"));
    }
}
