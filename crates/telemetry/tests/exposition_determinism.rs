//! Live exposition must not perturb tuning: a run scraped mid-tune by a
//! concurrent HTTP client is bitwise identical to the same run with obs
//! fully disabled. The scraper thread only reads sharded atomics, so no
//! RNG stream or float reduction order can shift.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use crowdtune_apps::{Application, DemoFunction};
use crowdtune_core::tuner::{tune_notla_constrained, TuneConfig, TuneResult};
use crowdtune_obs as obs;
use crowdtune_space::Point;
use crowdtune_telemetry::{exposition::scrape, ExpositionServer};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fingerprint(result: &TuneResult) -> Vec<(Vec<u64>, Result<u64, String>, String)> {
    result
        .history
        .iter()
        .map(|r| {
            (
                r.unit.iter().map(|v| v.to_bits()).collect(),
                r.result.as_ref().map(|y| y.to_bits()).map_err(Clone::clone),
                r.proposed_by.clone(),
            )
        })
        .collect()
}

fn run(seed: u64) -> TuneResult {
    let app = DemoFunction::new(1.2);
    let space = app.tuning_space();
    let mut noise_rng = StdRng::seed_from_u64(seed ^ 0xAB);
    let mut objective = |p: &Point| app.evaluate(p, &mut noise_rng).map_err(|e| e.to_string());
    let config = TuneConfig {
        budget: 10,
        n_init: 3,
        seed,
        ..Default::default()
    };
    tune_notla_constrained(&space, &mut objective, &config, None)
}

#[test]
fn scraping_mid_tune_keeps_runs_bitwise_identical() {
    obs::set_metrics_enabled(false);
    let baseline = fingerprint(&run(91));

    let dir = std::env::temp_dir().join("crowdtune_expo_determinism");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("expo.jsonl");
    obs::set_metrics_enabled(true);
    obs::install_journal(Arc::new(obs::Journal::create(&path).unwrap()));
    let server = ExpositionServer::start("127.0.0.1:0").expect("bind exposition");
    let addr = server.local_addr();

    // Hammer the endpoint from another thread for the whole run.
    let done = Arc::new(AtomicBool::new(false));
    let done_flag = Arc::clone(&done);
    let landed = Arc::new(AtomicUsize::new(0));
    let landed_in_thread = Arc::clone(&landed);
    let scraper = std::thread::spawn(move || {
        let mut ok = 0usize;
        while !done_flag.load(Ordering::Relaxed) {
            if scrape(addr).is_ok() {
                ok += 1;
                landed_in_thread.store(ok, Ordering::Relaxed);
            }
        }
        ok
    });

    // The release-mode run can finish in a few milliseconds — faster
    // than thread spawn + first TCP connect on a loaded machine. Wait
    // for the scraper to land its first request so the run is
    // guaranteed to overlap live scraping.
    while landed.load(Ordering::Relaxed) == 0 {
        std::thread::yield_now();
    }

    let instrumented = fingerprint(&run(91));
    done.store(true, Ordering::Relaxed);
    let scrapes = scraper.join().expect("scraper thread");
    obs::uninstall_journal();
    obs::set_metrics_enabled(false);

    assert!(scrapes > 0, "scraper must have landed at least one request");
    assert_eq!(
        baseline, instrumented,
        "run scraped mid-tune diverged from the unobserved baseline"
    );

    // And a final scrape is valid Prometheus text with the tuner's
    // metric families present.
    let body = scrape(addr).expect("final scrape");
    assert!(body.contains("# TYPE"));
    server.shutdown();
    std::fs::remove_file(&path).ok();
}
