//! End-to-end fleet telemetry: drive real tuning runs with a journal
//! installed, ingest the journal into the telemetry collection, and
//! answer the fleet questions the ISSUE calls out — per-stage p50/p95
//! grouped by TLA algorithm, and a collapsed-stack profile with real
//! nesting depth.

use std::sync::Arc;

use crowdtune_apps::{Application, DemoFunction};
use crowdtune_core::tuner::{tune_notla_constrained, tune_tla_constrained, TuneConfig};
use crowdtune_core::{dims_of, Dataset, SourceTask, WeightedSum};
use crowdtune_obs as obs;
use crowdtune_space::Point;
use crowdtune_telemetry::{
    fleet_stage_percentiles, ingest_into, Access, FleetQuery, IngestMeta, TelemetryCollection,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_notla(seed: u64) {
    let app = DemoFunction::new(1.2);
    let space = app.tuning_space();
    let mut noise_rng = StdRng::seed_from_u64(seed ^ 0xAB);
    let mut objective = |p: &Point| app.evaluate(p, &mut noise_rng).map_err(|e| e.to_string());
    let config = TuneConfig {
        budget: 8,
        n_init: 3,
        seed,
        ..Default::default()
    };
    tune_notla_constrained(&space, &mut objective, &config, None);
}

fn run_tla(seed: u64) {
    let src_app = DemoFunction::new(0.8);
    let src_space = src_app.tuning_space();
    let mut ds = Dataset::default();
    for i in 0..30 {
        let x = (i as f64 + 0.5) / 30.0;
        ds.push(vec![x], DemoFunction::value(0.8, x));
    }
    let mut rng = StdRng::seed_from_u64(3);
    let source = SourceTask::fit("t=0.8", ds, &dims_of(&src_space), &mut rng).expect("source fit");

    let app = DemoFunction::new(1.2);
    let space = app.tuning_space();
    let mut noise_rng = StdRng::seed_from_u64(seed ^ 0xCD);
    let mut objective = |p: &Point| app.evaluate(p, &mut noise_rng).map_err(|e| e.to_string());
    let config = TuneConfig {
        budget: 6,
        seed,
        ..Default::default()
    };
    let mut strategy = WeightedSum::dynamic();
    tune_tla_constrained(
        &space,
        &mut objective,
        std::slice::from_ref(&source),
        &mut strategy,
        &config,
        None,
    );
}

#[test]
fn journal_to_fleet_percentiles_and_profile() {
    let dir = std::env::temp_dir().join("crowdtune_telemetry_pipeline");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fleet.jsonl");

    obs::set_metrics_enabled(true);
    let journal = Arc::new(obs::Journal::create(&path).unwrap());
    obs::install_journal(journal);
    run_notla(11);
    run_notla(12);
    run_tla(13);
    obs::uninstall_journal();
    obs::set_metrics_enabled(false);

    let collection = TelemetryCollection::new();
    let meta = IngestMeta::public("demo", "ci-box", "alice");
    let n = ingest_into(&collection, &path, &meta).expect("ingest");
    assert_eq!(n, 3, "three tuning runs, three records");

    // Fleet question from the ISSUE: fit-time percentiles by algorithm.
    let query = FleetQuery::all().for_app("demo").on_machine("ci-box");
    let groups = fleet_stage_percentiles(&collection, Some("bob"), &query, "fit");
    assert_eq!(
        groups.keys().collect::<Vec<_>>(),
        vec!["NoTLA", "WeightedSum(dynamic)"],
        "runs group by TLA algorithm"
    );
    for (tuner, s) in &groups {
        assert!(s.samples > 0, "{tuner}: pooled fit samples");
        assert!(
            s.p50_us <= s.p95_us && s.p95_us <= s.max_us,
            "{tuner}: percentiles must be monotone"
        );
    }
    assert_eq!(groups["NoTLA"].runs, 2);

    // Per-iteration stage exists too, and filtering by tuner narrows it.
    let notla_only = query.clone().with_tuner("NoTLA");
    let iter_groups = fleet_stage_percentiles(&collection, None, &notla_only, "iteration");
    assert_eq!(iter_groups.len(), 1);
    assert_eq!(iter_groups["NoTLA"].samples, 16, "8 iterations x 2 runs");

    // The ingested profile is a real collapsed stack: at least one path
    // three frames deep (tune;propose;gp_fit or deeper).
    let records = collection.query(None, &query);
    let depth = records
        .iter()
        .flat_map(|r| r.profile.keys())
        .map(|path| path.split(';').count())
        .max()
        .unwrap_or(0);
    assert!(
        depth >= 3,
        "collapsed-stack profile must resolve >= 3 stack depths, got {depth}"
    );
    assert!(records
        .iter()
        .flat_map(|r| r.profile.keys())
        .all(|path| path.starts_with("tune")));

    std::fs::remove_file(&path).ok();
}

#[test]
fn fleet_queries_respect_record_access() {
    let collection = TelemetryCollection::new();
    let events = synthetic_run("NoTLA", "alice-private");
    let mut meta = IngestMeta::public("demo", "ci-box", "alice");
    meta.access = Access::Private;
    for rec in crowdtune_telemetry::ingest_events(&events, &meta) {
        collection.insert(rec);
    }
    let mut meta_pub = IngestMeta::public("demo", "ci-box", "carol");
    meta_pub.access = Access::Shared {
        with: vec!["bob".to_string()],
    };
    for rec in
        crowdtune_telemetry::ingest_events(&synthetic_run("NoTLA", "carol-shared"), &meta_pub)
    {
        collection.insert(rec);
    }

    let query = FleetQuery::all();
    // Bob sees only the record shared with him; the private run never
    // leaks into his fleet percentiles.
    let bob = collection.query(Some("bob"), &query);
    assert_eq!(bob.len(), 1);
    assert_eq!(bob[0].run, "carol-shared");
    let bob_groups = fleet_stage_percentiles(&collection, Some("bob"), &query, "fit");
    assert_eq!(bob_groups["NoTLA"].runs, 1);
    // An anonymous fleet query sees neither.
    assert!(collection.query(None, &query).is_empty());
    // Owners see their own.
    assert_eq!(collection.query(Some("alice"), &query).len(), 1);
}

fn synthetic_run(tuner: &str, run: &str) -> Vec<obs::Event> {
    vec![
        obs::Event::RunStart {
            run: run.to_string(),
            tuner: tuner.to_string(),
            dim: 2,
            budget: 4,
            seed: 1,
        },
        obs::Event::Fit {
            model: "gp".into(),
            points: 8,
            restarts: 2,
            nll: Some(0.5),
            duration_us: 120,
            fallback: false,
        },
        obs::Event::RunEnd {
            iterations: 4,
            failures: 0,
            best: Some(0.5),
            duration_us: 5000,
        },
    ]
}
