//! Live-scrape integrity: Prometheus exposition under a concurrent
//! crowd-service workload.
//!
//! Eight writer threads hammer a durable [`CrowdService`] (uploads and
//! cached queries, group-commit WAL) while the main thread repeatedly
//! scrapes the [`ExpositionServer`]. Every scrape must parse cleanly —
//! no torn lines, every sample numeric — and the final scrape must
//! expose at least ten metric families.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use crowdtune_db::{
    parse_query, CrowdService, EvalOutcome, FunctionEvaluation, MachineConfig, ServiceConfig,
    WalConfig,
};
use crowdtune_obs as obs;
use crowdtune_telemetry::{scrape, ExpositionServer};

fn eval(problem: &str, m: i64) -> FunctionEvaluation {
    FunctionEvaluation::new(problem, "alice")
        .task("m", m)
        .param("mb", 4i64)
        .outcome(EvalOutcome::single("runtime", m as f64))
        .on_machine(MachineConfig::new("cori", "haswell", 8, 32))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir()
        .join("crowdtune_live_scrape")
        .join(format!("scrape_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Split an HTTP response into (status line, body) and assert the body
/// is a well-formed Prometheus text page: every non-comment, non-blank
/// line is `name[{labels}] value` with a numeric value. A torn line —
/// a sample interleaved with another write — fails the parse.
fn assert_well_formed(response: &str) -> usize {
    assert!(
        response.starts_with("HTTP/1.1 200 OK"),
        "scrape must succeed: {}",
        response.lines().next().unwrap_or("")
    );
    let body = response
        .split_once("\r\n\r\n")
        .expect("response has a header/body split")
        .1;
    let mut families = 0usize;
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            families += 1;
            let mut parts = rest.split_whitespace();
            assert!(parts.next().is_some(), "TYPE line names a family: {line}");
            let kind = parts.next().expect("TYPE line has a kind");
            assert!(
                matches!(kind, "counter" | "summary" | "gauge" | "histogram"),
                "unknown family kind in {line:?}"
            );
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment line {line:?}");
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line lacks a value: {line:?}"));
        assert!(
            name.starts_with("crowdtune_"),
            "sample outside our namespace (torn line?): {line:?}"
        );
        value
            .parse::<f64>()
            .unwrap_or_else(|e| panic!("non-numeric sample {line:?}: {e}"));
    }
    families
}

#[test]
fn concurrent_scrapes_stay_well_formed_under_live_writes() {
    obs::set_metrics_enabled(true);
    let dir = temp_dir();
    let (svc, _) = CrowdService::open_durable(
        &dir,
        ServiceConfig {
            shards: 4,
            wal: WalConfig {
                group_commit: true,
                group_window_us: 200,
                compact_every: 0,
                ..WalConfig::default()
            },
            ..ServiceConfig::default()
        },
    )
    .unwrap();
    let server = ExpositionServer::start("127.0.0.1:0").expect("bind exposition server");
    let addr = server.local_addr();
    let done = AtomicBool::new(false);

    std::thread::scope(|s| {
        for t in 0..8i64 {
            let svc = &svc;
            s.spawn(move || {
                let filter = parse_query("task.m >= 0").unwrap();
                for i in 0..24 {
                    svc.insert(eval(&format!("P{t}"), i)).unwrap();
                    // Miss then hit, exercising both cache counters and
                    // the hit-path timing histogram.
                    let (rows, _) = svc.query_problem_counted(&format!("P{t}"), &filter, None);
                    assert_eq!(rows.len() as i64, i + 1);
                    svc.query_problem_counted(&format!("P{t}"), &filter, None);
                }
            });
        }

        // Scrape continuously while the writers run, then once more
        // after the flag flips so at least one scrape is mid-workload.
        let done = &done;
        let scraper = s.spawn(move || {
            let mut scrapes = 0usize;
            while !done.load(Ordering::Relaxed) || scrapes == 0 {
                let response = scrape(addr).expect("live scrape");
                assert_well_formed(&response);
                scrapes += 1;
            }
            scrapes
        });

        // Writers finish when the scope's unnamed threads join; emulate
        // that by spawning a watcher that flips the flag afterwards.
        // (Scoped threads join in drop order, so flip explicitly.)
        let svc2 = &svc;
        s.spawn(move || {
            // Wait until all uploads have landed.
            let filter = parse_query("task.m >= 0").unwrap();
            loop {
                let total: usize = (0..8)
                    .map(|t| {
                        svc2.query_problem_counted(&format!("P{t}"), &filter, None)
                            .0
                            .len()
                    })
                    .sum();
                if total == 8 * 24 {
                    break;
                }
                std::thread::yield_now();
            }
            done.store(true, Ordering::Relaxed);
        });

        let scrapes = scraper.join().expect("scraper thread");
        assert!(scrapes >= 1, "at least one live scrape completed");
    });

    let final_scrape = scrape(addr).expect("final scrape");
    let families = assert_well_formed(&final_scrape);
    assert!(
        families >= 10,
        "a live durable workload exposes >= 10 metric families, got {families}"
    );
    server.shutdown();
    obs::set_metrics_enabled(false);
    std::fs::remove_dir_all(&dir).ok();
}
