//! The full crowd-tuning story, end to end:
//!
//! 1. users register with the shared database and get API keys;
//! 2. "the crowd" uploads performance samples for source tasks
//!    (PDGEQRF at several matrix sizes), environment metadata recorded
//!    via the automatic Slurm/Spack parsers;
//! 3. a new user writes a meta description, opens a session, and the
//!    tuner downloads the relevant crowd data, groups it into source
//!    tasks, and runs ensemble transfer learning on *their* problem;
//! 4. the new user's evaluations are uploaded back for the next person.
//!
//! Run: `cargo run --release --example crowd_transfer`

use crowdtune::apps::Pdgeqrf;
use crowdtune::db::{parse_slurm_env, parse_spack_spec};
use crowdtune::prelude::*;
use crowdtune::tuner::data::value_to_scalar;
use crowdtune::tuner::tune_tla_constrained;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let db = HistoryDb::new();
    let mut rng = StdRng::seed_from_u64(99);

    // --- 1. The crowd: two users upload source data -----------------------
    let alice = db
        .register_user("alice", "alice@lab.gov", true, &mut rng)
        .unwrap();
    let bob = db
        .register_user("bob", "bob@univ.edu", true, &mut rng)
        .unwrap();

    let machine = MachineModel::cori_haswell(8);
    for (user, m) in [(&alice, 10_000u64), (&bob, 8_000u64)] {
        let app = Pdgeqrf::new(m, m, machine.clone());
        let space = app.tuning_space();
        // The "automatic environment parsing": the job's Slurm variables
        // and Spack spec become the reproducibility record.
        let machine_cfg = parse_slurm_env(&machine.slurm_env()).unwrap();
        let software = parse_spack_spec("scalapack@2.1.0%gcc@8.3.0+pic").unwrap();
        let mut sample_rng = StdRng::seed_from_u64(m);
        let mut uploaded = 0;
        while uploaded < 80 {
            let point = crowdtune::space::sample_uniform(&space, 1, &mut sample_rng)
                .pop()
                .expect("one point");
            // A crowd user's tuning script enforces the structural
            // constraints before launching a job.
            if !app.validate_config(&point) {
                continue;
            }
            uploaded += 1;
            let outcome = match app.evaluate(&point, &mut sample_rng) {
                Ok(y) => EvalOutcome::single("runtime", y),
                Err(e) => EvalOutcome::Failed {
                    reason: e.to_string(),
                },
            };
            let mut eval = FunctionEvaluation::new(app.name(), "overwritten-by-db");
            eval.task_parameters = app.task_parameters();
            for (param, value) in space.params().iter().zip(&point) {
                eval.tuning_parameters
                    .insert(param.name.clone(), value_to_scalar(value, &param.domain));
            }
            eval.machine = machine_cfg.clone();
            eval.software = vec![software.clone()];
            eval = eval.outcome(outcome);
            db.submit(user, eval).unwrap();
        }
    }
    println!(
        "crowd database now holds {} samples for {:?}",
        db.len(),
        db.problems()
    );

    // --- 2. A new user: one meta description does everything --------------
    let carol = db
        .register_user("carol", "carol@hpc.org", true, &mut rng)
        .unwrap();
    let meta = format!(
        r#"{{
        "api_key": "{carol}",
        "tuning_problem_name": "PDGEQRF",
        "problem_space": {{
            "input_space": [
                {{"name": "m", "type": "integer", "lower_bound": 1000, "upper_bound": 20000}},
                {{"name": "n", "type": "integer", "lower_bound": 1000, "upper_bound": 20000}}
            ],
            "parameter_space": [
                {{"name": "mb", "type": "integer", "lower_bound": 1, "upper_bound": 16}},
                {{"name": "nb", "type": "integer", "lower_bound": 1, "upper_bound": 16}},
                {{"name": "lg2npernode", "type": "integer", "lower_bound": 0, "upper_bound": 5}},
                {{"name": "p", "type": "integer", "lower_bound": 1, "upper_bound": 256}}
            ],
            "output_space": [{{"name": "runtime", "type": "real"}}]
        }},
        "configuration_space": {{
            "machine_configurations": [
                {{"machine_name": "cori", "node_type": "haswell", "nodes_from": 1, "nodes_to": 16}}
            ],
            "software_configurations": [
                {{"name": "gcc", "version_from": [8, 0, 0], "version_to": [9, 0, 0]}}
            ],
            "user_configurations": []
        }},
        "machine_configuration": "cori",
        "software_configuration": ["scalapack@2.1.0%gcc@8.3.0"],
        "sync_crowd_repo": "yes"
    }}"#
    );
    let session = CrowdSession::open(&db, &meta).expect("session");
    let sources = session.source_tasks(20).expect("source tasks");
    println!(
        "downloaded crowd data grouped into {} source task(s): {:?}",
        sources.len(),
        sources
            .iter()
            .map(|s| (s.data.len(), s.name.as_str()))
            .collect::<Vec<_>>()
    );

    // --- 3. Transfer-learn Carol's own task -------------------------------
    let target = Pdgeqrf::new(12_000, 12_000, machine.clone());
    let space = target.tuning_space();
    let mut noise = StdRng::seed_from_u64(1234);
    let session_ref = &session;
    let target_ref = &target;
    let mut objective = |p: &Point| {
        let result = target_ref.evaluate(p, &mut noise);
        // sync_crowd_repo = "yes": every evaluation goes back to the crowd.
        let mut eval = FunctionEvaluation::new(target_ref.name(), "carol");
        eval.task_parameters = target_ref.task_parameters();
        let space = target_ref.tuning_space();
        for (param, value) in space.params().iter().zip(p) {
            eval.tuning_parameters
                .insert(param.name.clone(), value_to_scalar(value, &param.domain));
        }
        eval = eval.outcome(match &result {
            Ok(y) => EvalOutcome::single("runtime", *y),
            Err(e) => EvalOutcome::Failed {
                reason: e.to_string(),
            },
        });
        session_ref.upload(eval).expect("upload");
        result.map_err(|e| e.to_string())
    };

    let config = TuneConfig {
        budget: 10,
        seed: 7,
        ..Default::default()
    };
    let mut ensemble = Ensemble::proposed_default();
    let constraint = |p: &Point| target_ref.validate_config(p);
    let result = tune_tla_constrained(
        &space,
        &mut objective,
        &sources,
        &mut ensemble,
        &config,
        Some(&constraint),
    );

    let (best_point, best_y) = result.best().expect("a success");
    println!("\nensemble transfer learning, 10 evaluations:");
    for (i, (rec, best)) in result.history.iter().zip(result.best_so_far()).enumerate() {
        println!(
            "  eval {:>2} [{}] -> {:<22} best-so-far {:.4}",
            i + 1,
            rec.proposed_by,
            match &rec.result {
                Ok(y) => format!("{y:.4}s"),
                Err(e) => format!("failed ({e})"),
            },
            best.unwrap_or(f64::NAN),
        );
    }
    println!("\nbest: {best_y:.4}s at {best_point:?}");
    println!(
        "database grew to {} samples (Carol's runs included)",
        db.len()
    );
    println!("ensemble attribution: {:?}", ensemble.attribution());
}
