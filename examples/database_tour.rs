//! A tour of the shared crowd-tuning database: registration and API
//! keys, automatic environment capture, SQL-like queries, access
//! control, and JSON persistence.
//!
//! Run: `cargo run --release --example database_tour`

use crowdtune::db::{
    parse_query, parse_slurm_env, parse_spack_spec, Access, DocumentStore, EvalOutcome,
    FunctionEvaluation, HistoryDb, QuerySpec,
};
use crowdtune::prelude::MachineModel;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let db = HistoryDb::new();
    let mut rng = StdRng::seed_from_u64(2026);

    // --- Users and keys ----------------------------------------------------
    let alice = db
        .register_user("alice", "alice@lab.gov", true, &mut rng)
        .unwrap();
    println!("alice's API key: {alice} (20 random characters)");
    // Keypair mode: the server stores only a fingerprint of the secret.
    db.users().register("bob", "bob@univ.edu", false).unwrap();
    db.users()
        .register_keypair("bob", "bob-private-secret")
        .unwrap();
    println!(
        "bob authenticated via keypair: {:?}",
        db.users().authenticate("bob-private-secret")
    );
    println!(
        "public user directory (bob opted out): {:?}",
        db.users().public_users()
    );

    // --- Automatic environment capture --------------------------------------
    let machine = MachineModel::cori_haswell(8);
    let machine_cfg = parse_slurm_env(&machine.slurm_env()).unwrap();
    let software = parse_spack_spec("SuperLU_DIST@7.2.0%GCC@9.1.0+openmp~cuda").unwrap();
    println!("\nparsed Slurm environment: {machine_cfg:?}");
    println!("parsed Spack spec:        {software:?}");

    // --- Uploads with mixed accessibility -----------------------------------
    for (m, runtime, access) in [
        (1000i64, 1.25, Access::Public),
        (2000, 2.5, Access::Public),
        (4000, 5.1, Access::Private),
        (
            8000,
            10.2,
            Access::Shared {
                with: vec!["bob".into()],
            },
        ),
    ] {
        let eval = FunctionEvaluation::new("PDGEQRF", "alice")
            .task("m", m)
            .task("n", m)
            .param("mb", 4i64)
            .param("nb", 8i64)
            .outcome(EvalOutcome::single("runtime", runtime))
            .on_machine(machine_cfg.clone())
            .with_software(software.clone())
            .with_access(access);
        db.submit(&alice, eval).unwrap();
    }
    // One failed run is recorded too.
    db.submit(
        &alice,
        FunctionEvaluation::new("PDGEQRF", "alice")
            .task("m", 16000i64)
            .task("n", 16000i64)
            .outcome(EvalOutcome::Failed {
                reason: "out of memory".into(),
            }),
    )
    .unwrap();

    // --- SQL-like queries ----------------------------------------------------
    let q = "task.m BETWEEN 1000 AND 5000 AND output.runtime < 3.0 AND NOT status = 'failed'";
    let filter = parse_query(q).unwrap();
    let spec = QuerySpec::all_of("PDGEQRF").with_filter(filter);
    println!("\nquery: {q}");
    println!("  anonymous sees {} rows", db.query_public(&spec).len());
    println!(
        "  alice sees     {} rows",
        db.query(&alice, &spec).unwrap().len()
    );
    let all = QuerySpec::all_of("PDGEQRF").including_failures();
    println!(
        "everything incl. failures, as alice: {} rows",
        db.query(&alice, &all).unwrap().len()
    );
    println!(
        "everything, as bob (shared row visible):  {} rows",
        db.query("bob-private-secret", &QuerySpec::all_of("PDGEQRF"))
            .unwrap()
            .len()
    );

    // --- Persistence ----------------------------------------------------------
    let path = std::env::temp_dir().join("crowdtune_tour.json");
    db.save_documents(&path).unwrap();
    let store = DocumentStore::load(&path).unwrap();
    println!(
        "\nsaved and re-loaded the document store: {} documents",
        store.len()
    );
    std::fs::remove_file(&path).ok();
}
