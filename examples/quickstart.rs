//! Quickstart: autotune ScaLAPACK's PDGEQRF (simulated) on 8 Cori
//! Haswell nodes with plain Bayesian optimization.
//!
//! Run: `cargo run --release --example quickstart`

use crowdtune::apps::Pdgeqrf;
use crowdtune::prelude::*;
use crowdtune::tuner::tune_notla_constrained;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // The application instance: QR-factorize a 10000 x 10000 matrix on an
    // 8-node Haswell allocation (256 cores).
    let app = Pdgeqrf::new(10_000, 10_000, MachineModel::cori_haswell(8));
    let space = app.tuning_space();
    println!(
        "tuning {} over {} parameters: {:?}",
        app.name(),
        space.dim(),
        space.names()
    );

    // The tuner sees a black box: a configuration in, a runtime (or a
    // failure) out. The RNG models run-to-run system noise.
    let mut noise = StdRng::seed_from_u64(7);
    let mut objective = |p: &Point| app.evaluate(p, &mut noise).map_err(|e| e.to_string());

    let config = TuneConfig {
        budget: 20,
        seed: 42,
        ..Default::default()
    };
    // The process-grid constraint is structural — tell the tuner so it
    // never wastes budget on configurations ScaLAPACK would reject.
    let constraint = |p: &Point| app.validate_config(p);
    let result = tune_notla_constrained(&space, &mut objective, &config, Some(&constraint));

    println!("\n eval  proposed-by           runtime       best-so-far");
    for (record, best) in result.history.iter().zip(result.best_so_far()) {
        let outcome = match &record.result {
            Ok(y) => format!("{y:>10.4}s"),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "{:>5}  {:<20} {:<18} {:>10.4}s",
            result
                .history
                .iter()
                .position(|r| std::ptr::eq(r, record))
                .unwrap()
                + 1,
            record.proposed_by,
            outcome,
            best.unwrap_or(f64::NAN),
        );
    }

    let (best_point, best_y) = result.best().expect("at least one success");
    println!(
        "\nbest configuration after {} evaluations: {best_y:.4}s",
        config.budget
    );
    for (param, value) in space.params().iter().zip(best_point) {
        println!("  {:<14} = {value:?}", param.name);
    }
}
