//! Sensitivity-driven search-space reduction (the paper's §VI-D/E
//! workflow) on the simulated Hypre GMRES+BoomerAMG solver:
//!
//! 1. collect crowd samples of the 12-parameter tuning problem;
//! 2. `QuerySensitivityAnalysis` fits a surrogate and reports Sobol
//!    S1/ST indices per parameter;
//! 3. keep the influential parameters, pin the rest, and tune the
//!    reduced space — comparing against tuning the original space.
//!
//! Run: `cargo run --release --example sensitivity_reduction`

use crowdtune::apps::HypreAmg;
use crowdtune::prelude::*;
use crowdtune::tuner::data::value_to_scalar;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let app = HypreAmg::new(100, 100, 100, MachineModel::cori_haswell(1));
    let space = app.tuning_space();

    // --- 1. Crowd data -----------------------------------------------------
    let db = HistoryDb::new();
    let mut rng = StdRng::seed_from_u64(11);
    let key = db
        .register_user("carol", "carol@hpc.org", true, &mut rng)
        .unwrap();
    let mut sample_rng = StdRng::seed_from_u64(31337);
    for point in crowdtune::space::sample_uniform(&space, 400, &mut sample_rng) {
        let y = app
            .evaluate(&point, &mut sample_rng)
            .expect("hypre never fails");
        let mut eval = FunctionEvaluation::new("Hypre", "carol");
        for (param, value) in space.params().iter().zip(&point) {
            eval.tuning_parameters
                .insert(param.name.clone(), value_to_scalar(value, &param.domain));
        }
        eval = eval.outcome(EvalOutcome::single("runtime", y));
        db.submit(&key, eval).unwrap();
    }

    // --- 2. Sensitivity analysis -------------------------------------------
    let meta = meta_json(&key);
    let session = CrowdSession::open(&db, &meta).expect("session");
    let analysis = crowdtune::tuner::query_sensitivity_analysis(
        &session,
        &AnalysisConfig {
            n_samples: 512,
            seed: 0,
        },
        0,
    )
    .expect("analysis");
    println!(
        "Sobol sensitivity of the crowd surrogate:\n{}",
        analysis.to_table()
    );
    let keep = analysis.influential_names(0.1);
    println!("parameters kept for tuning (ST > 0.1): {keep:?}\n");

    // --- 3. Tune reduced vs original ---------------------------------------
    // Pin everything not kept: defaults where known, mid-range otherwise.
    let defaults: Vec<(&str, Value)> = vec![
        ("Px", Value::Int(4)),
        ("Py", Value::Int(4)),
        ("Nproc", Value::Int(16)),
        ("strong_threshold", Value::Real(0.25)),
        ("trunc_factor", Value::Real(0.0)),
        ("P_max_elmts", Value::Int(4)),
        ("coarsen_type", Value::Cat(2)),
        ("relax_type", Value::Cat(3)),
        ("smooth_type", Value::Cat(0)),
        // When smooth_type is kept but the level count is pinned, pin it
        // to a value that keeps the smoother active.
        ("smooth_num_levels", Value::Int(3)),
        ("interp_type", Value::Cat(0)),
        ("agg_num_levels", Value::Int(0)),
    ];
    let kept: Vec<&str> = keep.clone();
    let pinned: Vec<(&str, Value)> = defaults
        .iter()
        .filter(|(name, _)| !kept.contains(name))
        .map(|(n, v)| (*n, v.clone()))
        .collect();
    let reduced = space.reduce(&kept, &pinned).expect("reduction");

    let budget = 20;
    for (label, dim_space, expand) in [
        ("original (12 params)", &space, false),
        ("reduced", reduced.sub_space(), true),
    ] {
        let mut noise = StdRng::seed_from_u64(5);
        let reduced_ref = &reduced;
        let app_ref = &app;
        let mut objective = |p: &Point| {
            let full;
            let point = if expand {
                full = reduced_ref.expand(p).expect("expansion");
                &full
            } else {
                p
            };
            // Log-runtime objective (standard for multiplicative cost
            // structures); reported values are exp'd back below.
            app_ref
                .evaluate(point, &mut noise)
                .map(f64::ln)
                .map_err(|e| e.to_string())
        };
        let config = TuneConfig {
            budget,
            seed: 3,
            n_init: dim_space.dim() + 1,
            ..Default::default()
        };
        let result = tune_notla(dim_space, &mut objective, &config);
        let (_, best) = result.best().unwrap();
        println!(
            "{label:<22}: best runtime after {budget} evals = {:.4}s",
            best.exp()
        );
    }
    println!("\n(single-seed illustration; the multi-seed comparison is the fig7 bench target)");
}

fn meta_json(key: &str) -> String {
    let cats = |list: &[&str]| {
        list.iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    format!(
        r#"{{
        "api_key": "{key}",
        "tuning_problem_name": "Hypre",
        "problem_space": {{
            "input_space": [],
            "parameter_space": [
                {{"name": "Px", "type": "integer", "lower_bound": 1, "upper_bound": 32}},
                {{"name": "Py", "type": "integer", "lower_bound": 1, "upper_bound": 32}},
                {{"name": "Nproc", "type": "integer", "lower_bound": 1, "upper_bound": 32}},
                {{"name": "strong_threshold", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}},
                {{"name": "trunc_factor", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}},
                {{"name": "P_max_elmts", "type": "integer", "lower_bound": 1, "upper_bound": 12}},
                {{"name": "coarsen_type", "type": "categorical", "categories": [{}]}},
                {{"name": "relax_type", "type": "categorical", "categories": [{}]}},
                {{"name": "smooth_type", "type": "categorical", "categories": [{}]}},
                {{"name": "smooth_num_levels", "type": "integer", "lower_bound": 0, "upper_bound": 5}},
                {{"name": "interp_type", "type": "categorical", "categories": [{}]}},
                {{"name": "agg_num_levels", "type": "integer", "lower_bound": 0, "upper_bound": 5}}
            ],
            "output_space": [{{"name": "runtime", "type": "real"}}]
        }},
        "sync_crowd_repo": "no"
    }}"#,
        cats(&crowdtune::apps::COARSEN_TYPES),
        cats(&crowdtune::apps::RELAX_TYPES),
        cats(&crowdtune::apps::SMOOTH_TYPES),
        cats(&crowdtune::apps::INTERP_TYPES),
    )
}
