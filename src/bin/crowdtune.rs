//! The `crowdtune` command-line interface: tune the built-in simulated
//! applications, inspect a saved database, or run a sensitivity
//! analysis, from the shell.
//!
//! ```text
//! crowdtune tune --app pdgeqrf --budget 15 --seed 3 [--nodes 8] [--tla]
//! crowdtune sensitivity --app hypre --samples 400
//! crowdtune db-stats <saved-documents.json>
//! crowdtune apps
//! ```

use crowdtune::apps::{HypreAmg, Nimrod, Pdgeqrf, SparseMatrix, SuperLuDist};
use crowdtune::prelude::*;
use crowdtune::sensitivity::{analyze_space, AnalysisConfig};
use crowdtune::tuner::tune_notla_constrained;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arg(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn build_app(name: &str, nodes: u32) -> Box<dyn Application> {
    match name {
        "pdgeqrf" => Box::new(Pdgeqrf::new(
            10_000,
            10_000,
            MachineModel::cori_haswell(nodes),
        )),
        "nimrod" => Box::new(Nimrod::new(
            5,
            7,
            1,
            MachineModel::cori_haswell(nodes.max(8)),
        )),
        "superlu" => Box::new(SuperLuDist::new(
            SparseMatrix::si5h12(),
            MachineModel::cori_haswell(nodes),
        )),
        "hypre" => Box::new(HypreAmg::new(100, 100, 100, MachineModel::cori_haswell(1))),
        other => {
            eprintln!("unknown app '{other}' (try: pdgeqrf, nimrod, superlu, hypre)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let cmd = std::env::args().nth(1).unwrap_or_default();
    match cmd.as_str() {
        "tune" => cmd_tune(),
        "sensitivity" => cmd_sensitivity(),
        "db-stats" => cmd_db_stats(),
        "apps" => cmd_apps(),
        _ => {
            eprintln!("usage: crowdtune <tune|sensitivity|db-stats|apps> [options]");
            eprintln!("  tune        --app <name> [--budget N] [--seed S] [--nodes N] [--tla]");
            eprintln!("  sensitivity --app <name> [--samples N] [--seed S]");
            eprintln!("  db-stats    <documents.json>");
            eprintln!("  apps        (list the built-in simulated applications)");
            std::process::exit(2);
        }
    }
}

fn cmd_apps() {
    println!("built-in simulated applications:");
    println!("  pdgeqrf  ScaLAPACK distributed QR (m=n=10000)");
    println!("  nimrod   NIMROD MHD time-marching ({{mx:5,my:7,lphi:1}})");
    println!("  superlu  SuperLU_DIST sparse LU (Si5H12)");
    println!("  hypre    Hypre GMRES+BoomerAMG (100^3 Poisson)");
}

fn cmd_tune() {
    let app_name = arg("--app").unwrap_or_else(|| "pdgeqrf".into());
    let budget: usize = arg("--budget").and_then(|v| v.parse().ok()).unwrap_or(15);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let nodes: u32 = arg("--nodes").and_then(|v| v.parse().ok()).unwrap_or(8);
    let app = build_app(&app_name, nodes);
    let space = app.tuning_space();
    println!(
        "tuning {} ({} parameters, budget {budget}, seed {seed})",
        app.name(),
        space.dim()
    );

    let mut noise = StdRng::seed_from_u64(seed ^ 0xAB0BA);
    let app_ref: &dyn Application = app.as_ref();
    let mut objective = |p: &Point| app_ref.evaluate(p, &mut noise).map_err(|e| e.to_string());
    let constraint = |p: &Point| app_ref.validate_config(p);
    let config = TuneConfig {
        budget,
        seed,
        ..Default::default()
    };

    let result = if flag("--tla") {
        // Bootstrap a source task from the same app family (here: the
        // same task; in real use the crowd provides different tasks).
        println!("collecting 60 source samples for transfer learning...");
        let mut ds = Dataset::default();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x50);
        while ds.len() < 60 {
            let p = crowdtune::space::sample_uniform(&space, 1, &mut rng)
                .pop()
                .expect("one point");
            if !app_ref.validate_config(&p) {
                continue;
            }
            if let Ok(y) = app_ref.evaluate(&p, &mut rng) {
                ds.push(space.to_unit(&p).unwrap(), y);
            }
        }
        let sources =
            vec![SourceTask::fit("self", ds, &dims_of(&space), &mut rng).expect("source fit")];
        let mut ensemble = Ensemble::proposed_default();
        crowdtune::tuner::tune_tla_constrained(
            &space,
            &mut objective,
            &sources,
            &mut ensemble,
            &config,
            Some(&constraint),
        )
    } else {
        tune_notla_constrained(&space, &mut objective, &config, Some(&constraint))
    };

    for (i, (rec, best)) in result.history.iter().zip(result.best_so_far()).enumerate() {
        let outcome = match &rec.result {
            Ok(y) => format!("{y:.4}"),
            Err(e) => format!("failed: {e}"),
        };
        println!(
            "  {:>3}  [{:<22}] {:<28} best {:.4}",
            i + 1,
            rec.proposed_by,
            outcome,
            best.unwrap_or(f64::NAN)
        );
    }
    match result.best() {
        Some((p, y)) => {
            println!("\nbest = {y:.4} at:");
            for (param, v) in space.params().iter().zip(p) {
                println!("  {:<18} = {v:?}", param.name);
            }
        }
        None => println!("no successful evaluation"),
    }
}

fn cmd_sensitivity() {
    let app_name = arg("--app").unwrap_or_else(|| "hypre".into());
    let n: usize = arg("--samples")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);
    let seed: u64 = arg("--seed").and_then(|v| v.parse().ok()).unwrap_or(0);
    let app = build_app(&app_name, 4);
    let space = app.tuning_space();
    println!(
        "Sobol sensitivity of the {} cost model ({} Saltelli base samples):",
        app.name(),
        n
    );
    let app_ref: &dyn Application = app.as_ref();
    let result = analyze_space(&space, &AnalysisConfig { n_samples: n, seed }, |u| {
        let mut v = u.to_vec();
        space.snap_unit(&mut v);
        let p = space.from_unit(&v).expect("dim matches");
        // Invalid or failed configurations contribute a large penalty so
        // the estimators see a finite (worst-case) surface.
        const PENALTY: f64 = 20.0; // ln-scale, ~5e8 seconds
        if !app_ref.validate_config(&p) {
            return PENALTY;
        }
        let mut rng = StdRng::seed_from_u64(0);
        app_ref
            .evaluate(&p, &mut rng)
            .map(|y| y.ln())
            .unwrap_or(PENALTY)
    });
    let names = space.names();
    println!("{:<20} {:>7} {:>7}", "parameter", "S1", "ST");
    for (name, p) in names.iter().zip(&result.result.params) {
        println!("{:<20} {:>7.3} {:>7.3}", name, p.s1, p.st);
    }
}

fn cmd_db_stats() {
    let Some(path) = std::env::args().nth(2) else {
        eprintln!("usage: crowdtune db-stats <documents.json>");
        std::process::exit(2);
    };
    let store = match crowdtune::db::DocumentStore::load(std::path::Path::new(&path)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot load '{path}': {e}");
            std::process::exit(1);
        }
    };
    println!("{path}: {} documents", store.len());
    for problem in store.problems() {
        let all = store.query_problem(&problem, &Filter::True, None);
        let ok = all.iter().filter(|d| d.result.is_ok()).count();
        let owners: std::collections::BTreeSet<&str> =
            all.iter().map(|d| d.owner.as_str()).collect();
        println!(
            "  {problem}: {} samples ({} ok, {} failed) from {} user(s)",
            all.len(),
            ok,
            all.len() - ok,
            owners.len()
        );
    }
}
