//! # crowdtune
//!
//! Crowd-based autotuning for high-performance computing applications —
//! a from-scratch Rust implementation of the GPTuneCrowd system
//! (*Harnessing the Crowd for Autotuning High-Performance Computing
//! Applications*, IPDPS 2023).
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`tuner`] ([`crowdtune_core`]) — Bayesian optimization, the
//!   transfer-learning (TLA) algorithm pool, the ensemble selector, the
//!   meta-description interface and the crowd-data utilities.
//! - [`db`] ([`crowdtune_db`]) — the shared performance database:
//!   JSON documents, SQL-like queries, users/API keys, access control,
//!   Spack/Slurm environment parsing, tag normalization.
//! - [`gp`] ([`crowdtune_gp`]) — Gaussian-process regression and the LCM
//!   multitask GP.
//! - [`space`] ([`crowdtune_space`]) — search spaces, transforms,
//!   samplers (uniform/LHS/Sobol'), space reduction.
//! - [`sensitivity`] ([`crowdtune_sensitivity`]) — Saltelli/Sobol global
//!   sensitivity analysis with bootstrap confidence intervals; Morris
//!   screening.
//! - [`apps`] ([`crowdtune_apps`]) — simulated HPC applications and
//!   machines (PDGEQRF, NIMROD, SuperLU_DIST, Hypre, synthetic
//!   functions; Cori Haswell/KNL).
//! - [`linalg`] ([`crowdtune_linalg`]) — the dense linear algebra and
//!   optimization substrate.
//! - [`telemetry`] ([`crowdtune_telemetry`]) — fleet telemetry: journal
//!   ingestion into the shared database, per-algorithm fleet queries,
//!   and Prometheus-text metrics exposition.
//!
//! ## Quickstart
//!
//! ```
//! use crowdtune::prelude::*;
//!
//! // A tuning problem: minimize a black-box over a small space.
//! let space = Space::new(vec![Param::real("x", 0.0, 1.0)]).unwrap();
//! let mut objective = |p: &Point| -> Result<f64, String> {
//!     let x = p[0].as_f64();
//!     Ok((x - 0.3) * (x - 0.3))
//! };
//! let config = TuneConfig { budget: 10, seed: 1, ..Default::default() };
//! let result = tune_notla(&space, &mut objective, &config);
//! let (best_point, best_y) = result.best().unwrap();
//! assert!(best_y < 0.05, "found {best_y} at {best_point:?}");
//! ```
//!
//! See `examples/` for crowd-tuning with transfer learning, the shared
//! database, and sensitivity-driven search-space reduction.

#![warn(missing_docs)]

pub use crowdtune_apps as apps;
pub use crowdtune_core as tuner;
pub use crowdtune_db as db;
pub use crowdtune_gp as gp;
pub use crowdtune_linalg as linalg;
pub use crowdtune_sensitivity as sensitivity;
pub use crowdtune_space as space;
pub use crowdtune_telemetry as telemetry;

/// The most common imports in one place.
pub mod prelude {
    pub use crowdtune_apps::{Application, EvalFailure, MachineModel};
    pub use crowdtune_core::{
        dims_of, ei_ranking_agreement, query_predict_output, query_sensitivity_analysis,
        query_surrogate_model, records_to_dataset, tune_notla, tune_tla, AgreementReport,
        CrowdSession, Dataset, Ensemble, EnsemblePolicy, MetaDescription, MultitaskPs, MultitaskTs,
        SourceTask, Stacking, SurrogateTier, TlaStrategy, TuneConfig, TuneResult, WeightedSum,
    };
    pub use crowdtune_db::{
        Access, EvalOutcome, Filter, FunctionEvaluation, HistoryDb, MachineConfig, QuerySpec,
        Scalar, SoftwareConfig,
    };
    pub use crowdtune_gp::{
        Gp, GpConfig, Lcm, LcmConfig, LocalExperts, LocalExpertsConfig, SparseGp, SparseGpConfig,
        TaskData,
    };
    pub use crowdtune_sensitivity::{analyze_space, AnalysisConfig};
    pub use crowdtune_space::{Param, Point, Space, Value};
}
