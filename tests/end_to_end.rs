//! Cross-crate integration tests: the full crowd-tuning pipelines,
//! exercised through the public facade crate exactly as a downstream
//! user would.

use crowdtune::apps::{DemoFunction, HypreAmg, Nimrod, Pdgeqrf};
use crowdtune::prelude::*;
use crowdtune::tuner::data::value_to_scalar;
use crowdtune::tuner::{tune_notla_constrained, tune_tla_constrained};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Upload `n` valid random samples of an application to the db.
fn upload_samples(db: &HistoryDb, key: &str, app: &dyn Application, n: usize, seed: u64) -> usize {
    let space = app.tuning_space();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut count = 0;
    let mut tries = 0;
    while count < n && tries < 100 * n {
        tries += 1;
        let point = crowdtune::space::sample_uniform(&space, 1, &mut rng)
            .pop()
            .unwrap();
        if !app.validate_config(&point) {
            continue;
        }
        let outcome = match app.evaluate(&point, &mut rng) {
            Ok(y) => EvalOutcome::single(app.output_name(), y),
            Err(e) => EvalOutcome::Failed {
                reason: e.to_string(),
            },
        };
        let mut eval = FunctionEvaluation::new(app.name(), "tester");
        eval.task_parameters = app.task_parameters();
        for (param, value) in space.params().iter().zip(&point) {
            eval.tuning_parameters
                .insert(param.name.clone(), value_to_scalar(value, &param.domain));
        }
        db.submit(key, eval.outcome(outcome)).expect("submit");
        count += 1;
    }
    count
}

#[test]
fn notla_tunes_pdgeqrf_under_constraints() {
    let app = Pdgeqrf::new(8_000, 8_000, MachineModel::cori_haswell(8));
    let space = app.tuning_space();
    let mut noise = StdRng::seed_from_u64(17);
    let mut objective = |p: &Point| app.evaluate(p, &mut noise).map_err(|e| e.to_string());
    let constraint = |p: &Point| app.validate_config(p);
    let config = TuneConfig {
        budget: 12,
        seed: 5,
        ..Default::default()
    };
    let result = tune_notla_constrained(&space, &mut objective, &config, Some(&constraint));
    // No structural failures at all: the constraint filters them.
    assert_eq!(result.failures(), 0, "history: {:?}", result.history);
    let (_, best) = result.best().unwrap();
    // A decent configuration is clearly under 3 seconds in this model.
    assert!(best < 3.0, "best = {best}");
}

#[test]
fn transfer_learning_beats_no_transfer_on_demo() {
    // The paper's core claim, at miniature scale and with fixed seeds:
    // at a 5-evaluation budget, ensemble TLA with a correlated source
    // should match or beat NoTLA on the demo function.
    let source_app = DemoFunction::new(0.8);
    let target = DemoFunction::new(1.0);
    let space = target.tuning_space();

    // Source data.
    let mut ds = Dataset::default();
    let mut rng = StdRng::seed_from_u64(3);
    for p in crowdtune::space::sample_uniform(&space, 60, &mut rng) {
        let y = source_app.evaluate(&p, &mut rng).unwrap();
        ds.push(space.to_unit(&p).unwrap(), y);
    }
    let sources = vec![SourceTask::fit("t=0.8", ds, &dims_of(&space), &mut rng).unwrap()];

    let mut best_tla = f64::INFINITY;
    let mut best_notla = f64::INFINITY;
    for seed in [1u64, 2, 3] {
        let config = TuneConfig {
            budget: 5,
            seed,
            ..Default::default()
        };
        let mut noise = StdRng::seed_from_u64(seed);
        let mut obj = |p: &Point| target.evaluate(p, &mut noise).map_err(|e| e.to_string());
        let mut ensemble = Ensemble::proposed_default();
        let r = crowdtune::tuner::tune_tla(&space, &mut obj, &sources, &mut ensemble, &config);
        best_tla = best_tla.min(r.best().unwrap().1);

        let mut noise = StdRng::seed_from_u64(seed);
        let mut obj = |p: &Point| target.evaluate(p, &mut noise).map_err(|e| e.to_string());
        let r = crowdtune::tuner::tune_notla(&space, &mut obj, &config);
        best_notla = best_notla.min(r.best().unwrap().1);
    }
    assert!(
        best_tla <= best_notla + 0.05,
        "tla {best_tla} should be <= notla {best_notla} at tiny budget"
    );
}

#[test]
fn meta_description_session_roundtrip() {
    let db = HistoryDb::new();
    let mut rng = StdRng::seed_from_u64(1);
    let key = db
        .register_user("tester", "t@x.org", true, &mut rng)
        .unwrap();
    let app = Pdgeqrf::new(10_000, 10_000, MachineModel::cori_haswell(8));
    let n = upload_samples(&db, &key, &app, 40, 77);
    assert_eq!(n, 40);

    let meta = format!(
        r#"{{
        "api_key": "{key}",
        "tuning_problem_name": "PDGEQRF",
        "problem_space": {{
            "input_space": [
                {{"name": "m", "type": "integer", "lower_bound": 1000, "upper_bound": 20000}},
                {{"name": "n", "type": "integer", "lower_bound": 1000, "upper_bound": 20000}}
            ],
            "parameter_space": [
                {{"name": "mb", "type": "integer", "lower_bound": 1, "upper_bound": 16}},
                {{"name": "nb", "type": "integer", "lower_bound": 1, "upper_bound": 16}},
                {{"name": "lg2npernode", "type": "integer", "lower_bound": 0, "upper_bound": 5}},
                {{"name": "p", "type": "integer", "lower_bound": 1, "upper_bound": 256}}
            ],
            "output_space": [{{"name": "runtime", "type": "real"}}]
        }},
        "sync_crowd_repo": "yes"
    }}"#
    );
    let session = CrowdSession::open(&db, &meta).unwrap();
    let evals = session.query_function_evaluations().unwrap();
    assert!(!evals.is_empty());
    let tasks = session.source_tasks(10).unwrap();
    assert_eq!(tasks.len(), 1, "one task group (m=n=10000)");
    assert!(tasks[0].data.len() >= 10);

    // Surrogate + prediction utilities run end to end.
    let model = crowdtune::tuner::query_surrogate_model(&session, 0).unwrap();
    assert!(model.n_samples >= 10);
    let some_point = vec![Value::Int(4), Value::Int(4), Value::Int(3), Value::Int(8)];
    let (mean, std) = model.predict(&some_point).unwrap();
    assert!(mean.is_finite() && std >= 0.0);
}

#[test]
fn sensitivity_to_reduction_pipeline_on_hypre() {
    let db = HistoryDb::new();
    let mut rng = StdRng::seed_from_u64(2);
    let key = db
        .register_user("tester", "t@x.org", true, &mut rng)
        .unwrap();
    let app = HypreAmg::new(60, 60, 60, MachineModel::cori_haswell(1));
    upload_samples(&db, &key, &app, 250, 123);

    let cats = |list: &[&str]| -> String {
        list.iter()
            .map(|c| format!("\"{c}\""))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let meta = format!(
        r#"{{
        "api_key": "{key}",
        "tuning_problem_name": "Hypre",
        "problem_space": {{
            "input_space": [],
            "parameter_space": [
                {{"name": "Px", "type": "integer", "lower_bound": 1, "upper_bound": 32}},
                {{"name": "Py", "type": "integer", "lower_bound": 1, "upper_bound": 32}},
                {{"name": "Nproc", "type": "integer", "lower_bound": 1, "upper_bound": 32}},
                {{"name": "strong_threshold", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}},
                {{"name": "trunc_factor", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}},
                {{"name": "P_max_elmts", "type": "integer", "lower_bound": 1, "upper_bound": 12}},
                {{"name": "coarsen_type", "type": "categorical", "categories": [{}]}},
                {{"name": "relax_type", "type": "categorical", "categories": [{}]}},
                {{"name": "smooth_type", "type": "categorical", "categories": [{}]}},
                {{"name": "smooth_num_levels", "type": "integer", "lower_bound": 0, "upper_bound": 5}},
                {{"name": "interp_type", "type": "categorical", "categories": [{}]}},
                {{"name": "agg_num_levels", "type": "integer", "lower_bound": 0, "upper_bound": 5}}
            ],
            "output_space": [{{"name": "runtime", "type": "real"}}]
        }},
        "sync_crowd_repo": "no"
    }}"#,
        cats(&crowdtune::apps::COARSEN_TYPES),
        cats(&crowdtune::apps::RELAX_TYPES),
        cats(&crowdtune::apps::SMOOTH_TYPES),
        cats(&crowdtune::apps::INTERP_TYPES),
    );
    let session = CrowdSession::open(&db, &meta).unwrap();
    let analysis = crowdtune::tuner::query_sensitivity_analysis(
        &session,
        &AnalysisConfig {
            n_samples: 256,
            seed: 0,
        },
        0,
    )
    .unwrap();
    // The nearly-inert parameters must score near zero on the surrogate.
    for name in ["strong_threshold", "trunc_factor", "P_max_elmts", "Px"] {
        let p = analysis.for_param(name).unwrap();
        assert!(p.st < 0.1, "{name} ST = {}", p.st);
    }
    // Something must be influential, and it must include one of the
    // smoother/aggregation knobs.
    let infl = analysis.influential_names(0.1);
    assert!(!infl.is_empty());
    assert!(
        infl.iter()
            .any(|n| { ["smooth_type", "smooth_num_levels", "agg_num_levels"].contains(n) }),
        "influential: {infl:?}"
    );

    // Reduce and tune the reduced space — must produce a valid result.
    let space = session.tuning_space.clone();
    let reduced = space
        .reduce(
            &["smooth_type", "smooth_num_levels", "agg_num_levels"],
            &[
                ("Px", Value::Int(4)),
                ("Py", Value::Int(4)),
                ("Nproc", Value::Int(16)),
                ("strong_threshold", Value::Real(0.25)),
                ("trunc_factor", Value::Real(0.0)),
                ("P_max_elmts", Value::Int(4)),
                ("coarsen_type", Value::Cat(2)),
                ("relax_type", Value::Cat(3)),
                ("interp_type", Value::Cat(0)),
            ],
        )
        .unwrap();
    let mut noise = StdRng::seed_from_u64(9);
    let mut obj = |p: &Point| {
        let full = reduced.expand(p).unwrap();
        app.evaluate(&full, &mut noise).map_err(|e| e.to_string())
    };
    let config = TuneConfig {
        budget: 8,
        seed: 4,
        ..Default::default()
    };
    let result = crowdtune::tuner::tune_notla(reduced.sub_space(), &mut obj, &config);
    assert!(result.best().is_some());
}

#[test]
fn nimrod_oom_failures_recorded_not_fitted() {
    // The big NIMROD task has a genuine OOM region at high npz; the tuner
    // must keep going and report failures in the history.
    let app = Nimrod::new(6, 8, 1, MachineModel::cori_haswell(64));
    let space = app.tuning_space();
    let mut noise = StdRng::seed_from_u64(8);
    let mut objective = |p: &Point| app.evaluate(p, &mut noise).map_err(|e| e.to_string());
    let constraint = |p: &Point| app.validate_config(p);
    let config = TuneConfig {
        budget: 10,
        seed: 21,
        ..Default::default()
    };
    let result = tune_notla_constrained(&space, &mut objective, &config, Some(&constraint));
    assert_eq!(result.history.len(), 10);
    assert!(
        result.best().is_some(),
        "some configuration must fit in memory"
    );
    // Any recorded failures must be OOM (structural ones are filtered).
    for rec in &result.history {
        if let Err(e) = &rec.result {
            assert!(e.contains("memory"), "unexpected failure: {e}");
        }
    }
}

#[test]
fn tla_strategies_all_run_on_a_real_app() {
    let machine = MachineModel::cori_haswell(8);
    let src_app = Pdgeqrf::new(10_000, 10_000, machine.clone());
    let space = src_app.tuning_space();
    let mut rng = StdRng::seed_from_u64(4);
    let mut ds = Dataset::default();
    while ds.len() < 50 {
        let p = crowdtune::space::sample_uniform(&space, 1, &mut rng)
            .pop()
            .unwrap();
        if !src_app.validate_config(&p) {
            continue;
        }
        if let Ok(y) = src_app.evaluate(&p, &mut rng) {
            ds.push(space.to_unit(&p).unwrap(), y);
        }
    }
    let sources = vec![SourceTask::fit("src", ds, &dims_of(&space), &mut rng).unwrap()];
    let target = Pdgeqrf::new(12_000, 12_000, machine);

    let strategies: Vec<Box<dyn TlaStrategy>> = vec![
        Box::new(MultitaskPs::new()),
        Box::new(MultitaskTs::new()),
        Box::new(WeightedSum::equal()),
        Box::new(WeightedSum::dynamic()),
        Box::new(Stacking::new()),
        Box::new(Ensemble::proposed_default()),
        Box::new(Ensemble::new(
            vec![Box::new(WeightedSum::dynamic()), Box::new(Stacking::new())],
            EnsemblePolicy::Toggling,
        )),
    ];
    for mut strategy in strategies {
        let mut noise = StdRng::seed_from_u64(5);
        let mut obj = |p: &Point| target.evaluate(p, &mut noise).map_err(|e| e.to_string());
        let constraint = |p: &Point| target.validate_config(p);
        let config = TuneConfig {
            budget: 4,
            seed: 11,
            ..Default::default()
        };
        let result = tune_tla_constrained(
            &space,
            &mut obj,
            &sources,
            strategy.as_mut(),
            &config,
            Some(&constraint),
        );
        assert_eq!(result.history.len(), 4, "{}", strategy.name());
        assert!(result.best().is_some(), "{} found nothing", strategy.name());
    }
}
