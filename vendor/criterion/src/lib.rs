//! Offline stand-in for `criterion`.
//!
//! A lightweight timing harness exposing the criterion API subset the
//! bench suite uses: groups, `bench_function`, `bench_with_input`,
//! `iter`, `iter_batched`, `sample_size`, and the `criterion_group!` /
//! `criterion_main!` macros. Each benchmark runs a short warmup, then
//! `sample_size` timed samples, and reports the median per-iteration
//! time to stdout. No plots, no statistics beyond median/min/max.

use std::time::{Duration, Instant};

/// Re-export point for benchmark authors (`std::hint::black_box`).
pub use std::hint::black_box;

/// How batched inputs are sized; the stand-in times one routine call
/// per batch regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier `function_id/parameter` for parameterized benchmarks.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes a substring filter; honour it.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        Criterion { filter }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let filter = self.filter.clone();
        run_benchmark(name, &filter, 20, f);
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        match &self.filter {
            Some(f) => full_name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        if self.criterion.matches(&full) {
            run_benchmark(&full, &None, self.sample_size, f);
        }
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        if self.criterion.matches(&full) {
            run_benchmark(&full, &None, self.sample_size, |b| f(b, input));
        }
        self
    }

    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Time `routine` repeatedly; per-iteration cost is derived from
    /// batches sized to amortize clock overhead.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Calibrate: how many iterations fit in ~1ms?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch =
            (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;
        for _ in 0..self.target_samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / per_batch as u32);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark<F>(full_name: &str, filter: &Option<String>, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    if let Some(flt) = filter {
        if !full_name.contains(flt.as_str()) {
            return;
        }
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        target_samples: sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{full_name:<48} (no samples)");
        return;
    }
    let mut ns: Vec<u128> = bencher.samples.iter().map(|d| d.as_nanos()).collect();
    ns.sort_unstable();
    let median = ns[ns.len() / 2];
    let min = ns[0];
    let max = ns[ns.len() - 1];
    println!(
        "{full_name:<48} median {:>12}   min {:>12}   max {:>12}",
        fmt_ns(median),
        fmt_ns(min),
        fmt_ns(max)
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion { filter: None };
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        let mut count = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                count = count.wrapping_add(1);
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, n| {
            b.iter_batched(|| *n, |x| x * 2, BatchSize::SmallInput)
        });
        group.finish();
        assert!(count > 0);
    }
}
