//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync::{RwLock, Mutex}` with parking_lot's non-poisoning
//! API (`read()` / `write()` / `lock()` return guards directly). On
//! poison — which can only happen if a panic escaped while holding the
//! lock — the underlying data is still returned, matching parking_lot's
//! behaviour of not propagating poison.

pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
