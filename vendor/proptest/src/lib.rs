//! Offline stand-in for `proptest`.
//!
//! Provides the strategy combinators and macros this workspace's
//! property tests use. Differences from upstream: cases are sampled
//! from a deterministic per-test RNG (seeded from the test name), and
//! there is **no shrinking** — a failing case panics with the assertion
//! message and the case index so it can be replayed.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; not a failure.
    Reject,
    /// `prop_assert!`-style failure.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Per-test configuration (`cases` is the only knob this stand-in uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one test case (FNV-1a over the test name,
/// mixed with the case index).
pub fn case_rng(test_name: &str, case: u32) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
}

pub mod bool {
    use super::strategy::Strategy;
    use rand::Rng;

    /// Strategy for an arbitrary `bool`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut rand::rngs::StdRng) -> bool {
            rng.gen()
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::Rng;

    /// Inclusive element-count range for [`vec`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for a `Vec` of values from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            let n = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, ProptestConfig,
        TestCaseError,
    };
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Run property tests: each `fn` is expanded to a `#[test]` that samples
/// its arguments `cases` times from deterministic RNGs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut proptest_case_rng = $crate::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(
                    &($strat),
                    &mut proptest_case_rng,
                );)*
                let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed at case {}: {}", stringify!($name), case, msg)
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(left == right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

/// Choose uniformly among several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vec(xs in crate::collection::vec(0i64..10, 1..5), b in crate::bool::ANY) {
            prop_assert!(!xs.is_empty() && xs.len() < 5);
            prop_assert!(xs.iter().all(|x| (0..10).contains(x)));
            let _ = b;
        }

        #[test]
        fn oneof_and_map(v in prop_oneof![Just(1usize), (5usize..8).prop_map(|x| x)]) {
            prop_assert!(v == 1 || (5..8).contains(&v));
        }

        #[test]
        fn flat_map_dependent(pair in (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n).prop_map(move |v| (n, v))
        })) {
            prop_assert_eq!(pair.0, pair.1.len());
        }

        #[test]
        fn string_pattern(s in "[a-c]{1}") {
            prop_assert!(s.len() == 1 && ('a'..='c').contains(&s.chars().next().unwrap()));
        }

        #[test]
        fn assume_rejects(n in 0u64..10) {
            prop_assume!(n % 2 == 0);
            prop_assert!(n % 2 == 0);
        }
    }
}
