//! Strategy trait and combinators.

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the case RNG.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// Object-safe boxed strategy, used by `prop_oneof!`.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        (**self).generate(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among strategies of a common value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut StdRng) -> V {
        let idx = rng.gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategies!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
);

/// String strategies from a pattern, as in upstream proptest where
/// `&str` is "the regex language". This stand-in supports the subset
/// used here: a sequence of literal characters and `[a-z]`-style
/// character classes, each optionally repeated `{n}` or `{n,m}` times.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (chars, lo, hi) in &elements {
            let reps = if lo == hi {
                *lo
            } else {
                rng.gen_range(*lo..=*hi)
            };
            for _ in 0..reps {
                out.push(chars[rng.gen_range(0..chars.len())]);
            }
        }
        out
    }
}

/// Parse a pattern into (choices, min_reps, max_reps) elements.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut elements = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = if chars[i] == '[' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == ']')
                .expect("unclosed character class in pattern")
                + i;
            let mut set = Vec::new();
            let mut j = i + 1;
            while j < close {
                if j + 2 < close && chars[j + 1] == '-' {
                    let (lo, hi) = (chars[j], chars[j + 2]);
                    for c in lo..=hi {
                        set.push(c);
                    }
                    j += 3;
                } else {
                    set.push(chars[j]);
                    j += 1;
                }
            }
            i = close + 1;
            set
        } else {
            let c = chars[i];
            i += 1;
            vec![c]
        };
        let (mut lo, mut hi) = (1usize, 1usize);
        if i < chars.len() && chars[i] == '{' {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unclosed repetition in pattern")
                + i;
            let spec: String = chars[i + 1..close].iter().collect();
            if let Some((a, b)) = spec.split_once(',') {
                lo = a.trim().parse().expect("bad repetition count");
                hi = b.trim().parse().expect("bad repetition count");
            } else {
                lo = spec.trim().parse().expect("bad repetition count");
                hi = lo;
            }
            i = close + 1;
        }
        elements.push((choices, lo, hi));
    }
    elements
}
