//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates.io mirror, so the
//! workspace vendors the minimal API surface it actually uses: `RngCore`,
//! `Rng` (with `gen`, `gen_range`), `SeedableRng`, `rngs::StdRng`, and
//! `seq::SliceRandom`. The generator behind `StdRng` is xoshiro256++
//! seeded via SplitMix64 — statistically solid and fully deterministic,
//! which is all the tuner requires (the repo never depends on the exact
//! stream of upstream `StdRng`, only on per-seed reproducibility).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seeding support.
pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        // Expand the u64 through SplitMix64, as upstream rand does.
        let mut sm = SplitMix64(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&bytes[..len]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Types with a uniform distribution over half-open/closed ranges.
pub trait SampleUniform: Sized {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Ranges acceptable to [`Rng::gen_range`]. Single blanket impl per
/// range shape so type inference flows from usage to the literal, as
/// with upstream rand (`levels[rng.gen_range(0..2)]` infers `usize`).
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

int_sample_uniform!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

/// Unbiased uniform draw from `[0, span)` via Lemire-style rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

impl SampleUniform for f64 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64_from_bits(rng.next_u64())
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64_from_bits(rng.next_u64())
    }
}

impl SampleUniform for f32 {
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * u
    }
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        lo + (hi - lo) * u
    }
}

/// Uniform f64 in `[0, 1)` from the top 53 bits of a u64.
fn f64_from_bits(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values producible by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64_from_bits(rng.next_u64())
    }
}

impl Standard for f32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn generate<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// High-level convenience methods, blanket-implemented for every source.
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::generate(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic generator used throughout the workspace
    /// (xoshiro256++ core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let len = chunk.len();
                chunk.copy_from_slice(&bytes[..len]);
            }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0x6a09_e667_f3bc_c909,
                    0xbb67_ae85_84ca_a73b,
                    0x3c6e_f372_fe94_f82b,
                ];
            }
            StdRng { s }
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling / choosing, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher-Yates, matching upstream's downward sweep.
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(-3i64..9);
            assert!((-3..9).contains(&v));
            let u = rng.gen_range(0usize..5);
            assert!(u < 5);
            let f = rng.gen_range(-2.5f64..4.0);
            assert!((-2.5..4.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..20).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
