//! Offline stand-in for `rayon`.
//!
//! Implements the subset of the rayon API this workspace uses on top of
//! `std::thread::scope`: `par_iter()` / `into_par_iter()` followed by
//! `map(...)` and `collect()`, plus `join` and `current_num_threads`.
//!
//! Semantics that callers rely on and that this shim guarantees:
//!
//! * **Order preservation** — results come back in input order, so a
//!   parallel map is observationally identical to the sequential one.
//! * **Deterministic splitting** — items are divided into contiguous
//!   chunks; thread count never changes *which* work items exist, only
//!   how they are interleaved in time.
//! * **`RAYON_NUM_THREADS`** — honoured at first use, like upstream.
//!
//! Unlike upstream there is no global worker pool or work stealing:
//! threads are scoped per call. That costs a few microseconds per
//! parallel region, which is irrelevant for the coarse-grained regions
//! (L-BFGS restarts, candidate chunks, matrix row blocks) used here —
//! and it means a `map` closure only needs `Sync`, never `'static`.

use std::sync::OnceLock;

/// Number of worker threads a parallel region may use.
///
/// Reads `RAYON_NUM_THREADS` once (values < 1 are ignored), falling back
/// to `std::thread::available_parallelism`.
pub fn current_num_threads() -> usize {
    static N: OnceLock<usize> = OnceLock::new();
    *N.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Run two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon::join worker panicked");
        (ra, rb)
    })
}

/// Map `f` over `items` on up to [`current_num_threads`] scoped threads,
/// returning results in input order.
fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Contiguous chunks, sized as evenly as possible.
    let base = n / threads;
    let extra = n % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut iter = items.into_iter();
    for t in 0..threads {
        let take = base + usize::from(t < extra);
        chunks.push(iter.by_ref().take(take).collect());
    }
    let fref = &f;
    let mut out: Vec<R> = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(fref).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("rayon worker thread panicked"));
        }
    });
    out
}

/// An eagerly-splitting parallel iterator over an owned item list.
///
/// Adapters that do real work (`map`, `for_each`) execute in parallel;
/// terminal reductions then run serially over the already-computed
/// results, which preserves rayon's observable semantics for the
/// operations this workspace uses.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    pub fn map<R, F>(self, f: F) -> ParIter<R>
    where
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        ParIter {
            items: parallel_map(self.items, f),
        }
    }

    pub fn for_each<F>(self, f: F)
    where
        F: Fn(T) + Sync,
    {
        parallel_map(self.items, f);
    }

    pub fn enumerate(self) -> ParIter<(usize, T)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn collect<C: FromIterator<T>>(self) -> C {
        self.items.into_iter().collect()
    }

    pub fn sum<S: std::iter::Sum<T>>(self) -> S {
        self.items.into_iter().sum()
    }

    pub fn reduce<Id, Op>(self, identity: Id, op: Op) -> T
    where
        Id: Fn() -> T,
        Op: Fn(T, T) -> T,
    {
        self.items.into_iter().fold(identity(), op)
    }

    pub fn min_by<F>(self, cmp: F) -> Option<T>
    where
        F: Fn(&T, &T) -> std::cmp::Ordering,
    {
        self.items.into_iter().min_by(cmp)
    }
}

/// Conversion into a parallel iterator (owned items).
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<u64> {
    type Item = u64;
    fn into_par_iter(self) -> ParIter<u64> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_iter` / `par_chunks` over borrowed slices.
pub trait ParSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]>;
}

impl<T: Sync> ParSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<&[T]> {
        assert!(chunk_size > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk_size).collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParIter, ParSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let v: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = v.par_iter().map(|x| *x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_range() {
        let squares: Vec<usize> = (0..17usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares.len(), 17);
        assert_eq!(squares[16], 256);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par_chunks_cover_slice() {
        let v: Vec<i32> = (0..10).collect();
        let sums: Vec<i32> = v.par_chunks(3).map(|c| c.iter().sum()).collect();
        assert_eq!(sums, vec![3, 12, 21, 9]);
    }

    #[test]
    fn empty_input() {
        let v: Vec<i32> = Vec::new();
        let out: Vec<i32> = v.into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
    }
}
