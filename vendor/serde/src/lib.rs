//! Offline stand-in for `serde`.
//!
//! The real serde could not be fetched in the build environment, so the
//! workspace vendors a value-tree serialization core: types convert to
//! and from a JSON-shaped [`Value`] tree, and `serde_json` renders that
//! tree to text. The `derive` feature re-exports `Serialize` /
//! `Deserialize` derive macros from the companion `serde_derive` crate,
//! which understand the subset of `#[serde(...)]` attributes used in
//! this workspace: `tag`, `untagged`, `rename`, `rename_all =
//! "lowercase"`, `default`, and `skip`.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-shaped value tree: the serde data model of this stand-in.
///
/// Object keys keep insertion order so serialized output is stable.
/// Integers and floats are distinct variants; the JSON layer guarantees
/// floats always render with a decimal point (or exponent), so the
/// distinction round-trips through text. Untagged enums rely on this.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable path/description.
#[derive(Debug, Clone)]
pub struct DeError {
    msg: String,
}

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError { msg: msg.into() }
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the input and carries
    /// no `#[serde(default)]`. Only `Option` succeeds here, mirroring
    /// serde's missing-field fallback.
    fn from_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::new(format!("missing field `{field}`")))
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| DeError::new(format!("integer {i} out of range for {}", stringify!($t)))),
                    other => Err(DeError::new(format!(
                        "expected integer, found {}", kind_name(other)
                    ))),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, usize);

impl Serialize for u64 {
    fn to_value(&self) -> Value {
        // i64 covers every id / counter this workspace produces; values
        // beyond that would need a wider number model.
        Value::Int(i64::try_from(*self).expect("u64 value exceeds i64 range"))
    }
}

impl Deserialize for u64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Int(i) => u64::try_from(*i)
                .map_err(|_| DeError::new(format!("integer {i} out of range for u64"))),
            other => Err(DeError::new(format!(
                "expected integer, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DeError::new(format!(
                "expected number, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::new(format!(
                "expected bool, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::new(format!(
                "expected string, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }

    fn from_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::new(format!(
                "expected array, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| DeError::new(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) => {
                        let expected = [$($idx),+].len();
                        if items.len() != expected {
                            return Err(DeError::new(format!(
                                "expected tuple of length {expected}, found {}", items.len()
                            )));
                        }
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::new(format!(
                        "expected array (tuple), found {}", kind_name(other)
                    ))),
                }
            }
        }
    )+};
}

tuple_impls!((A: 0, B: 1), (A: 0, B: 1, C: 2), (A: 0, B: 1, C: 2, D: 3));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for stable output, as serde_json with a BTreeMap would.
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::new(format!(
                "expected object, found {}",
                kind_name(other)
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Helpers invoked by derive-generated code
// ---------------------------------------------------------------------------

pub fn kind_name(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) => "integer",
        Value::Float(_) => "float",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// Expect an object value; used for struct and tagged-enum bodies.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    match v {
        Value::Object(fields) => Ok(fields),
        other => Err(DeError::new(format!(
            "expected object for {ty}, found {}",
            kind_name(other)
        ))),
    }
}

/// Deserialize a required struct field (missing resolves through
/// [`Deserialize::from_missing`], so `Option` fields default to `None`).
pub fn de_field<T: Deserialize>(obj: &[(String, Value)], name: &str) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => T::from_missing(name),
    }
}

/// Deserialize a `#[serde(default)]` struct field.
pub fn de_field_default<T: Deserialize + Default>(
    obj: &[(String, Value)],
    name: &str,
) -> Result<T, DeError> {
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{name}`: {e}"))),
        None => Ok(T::default()),
    }
}

/// Fetch the string tag of an internally-tagged enum representation.
pub fn de_tag<'v>(obj: &'v [(String, Value)], tag: &str, ty: &str) -> Result<&'v str, DeError> {
    match obj.iter().find(|(k, _)| k == tag) {
        Some((_, Value::Str(s))) => Ok(s),
        Some((_, other)) => Err(DeError::new(format!(
            "tag `{tag}` of {ty} must be a string, found {}",
            kind_name(other)
        ))),
        None => Err(DeError::new(format!("missing tag `{tag}` for {ty}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_missing_field_is_none() {
        let obj: Vec<(String, Value)> = vec![];
        let v: Option<f64> = de_field(&obj, "absent").unwrap();
        assert!(v.is_none());
        assert!(de_field::<f64>(&obj, "absent").is_err());
    }

    #[test]
    fn numbers_cross_deserialize() {
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert!(i64::from_value(&Value::Float(3.0)).is_err());
    }

    #[test]
    fn tuple_and_array_roundtrip() {
        let t = ("x".to_string(), [1u32, 2, 3]);
        let v = t.to_value();
        let back: (String, [u32; 3]) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
