//! Offline stand-in for `serde_derive`.
//!
//! `syn`/`quote` are unavailable in this build environment, so the item
//! shape is parsed directly from the `proc_macro::TokenStream` and the
//! generated impls are assembled as source text. The macro never needs
//! to understand field *types*: generated code calls helper functions
//! in the `serde` crate (`de_field`, `from_value`, ...) whose type
//! parameters are resolved by ordinary type inference at the call site.
//!
//! Supported shapes (the full set used by this workspace):
//!
//! * structs with named fields, including `#[serde(rename = "...")]`,
//!   `#[serde(default)]` and `#[serde(skip)]` on fields;
//! * enums — externally tagged (default), internally tagged
//!   (`#[serde(tag = "...")]`, with `rename_all = "lowercase"`), and
//!   `#[serde(untagged)]` — with unit, newtype and struct variants.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all_lowercase: bool,
    untagged: bool,
}

struct Field {
    ident: String,
    rename: Option<String>,
    default: bool,
    skip: bool,
}

impl Field {
    fn key(&self) -> &str {
        self.rename.as_deref().unwrap_or(&self.ident)
    }
}

enum VariantKind {
    Unit,
    Newtype,
    Struct(Vec<Field>),
}

struct Variant {
    ident: String,
    kind: VariantKind,
}

enum Shape {
    Struct(Vec<Field>),
    Enum(Vec<Variant>),
}

struct Item {
    attrs: ContainerAttrs,
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;

    let mut attrs = ContainerAttrs::default();
    parse_attrs(&tokens, &mut pos, |inner| {
        apply_container_attr(&mut attrs, inner)
    });
    skip_visibility(&tokens, &mut pos);

    let keyword = expect_ident(&tokens, &mut pos);
    let name = expect_ident(&tokens, &mut pos);
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive stand-in does not support generic types ({name})");
    }
    let body = expect_group(&tokens, &mut pos, Delimiter::Brace, &name);

    let shape = match keyword.as_str() {
        "struct" => Shape::Struct(parse_fields(body)),
        "enum" => Shape::Enum(parse_variants(body)),
        other => panic!("serde_derive stand-in cannot derive for `{other}` items"),
    };
    Item { attrs, name, shape }
}

/// Consume leading `#[...]` attributes; serde attrs are fed to `on_serde`.
fn parse_attrs(tokens: &[TokenTree], pos: &mut usize, mut on_serde: impl FnMut(Vec<TokenTree>)) {
    loop {
        match tokens.get(*pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                let Some(TokenTree::Group(g)) = tokens.get(*pos + 1) else {
                    panic!("serde_derive: malformed attribute");
                };
                let attr_tokens: Vec<TokenTree> = g.stream().into_iter().collect();
                if let Some(TokenTree::Ident(id)) = attr_tokens.first() {
                    if id.to_string() == "serde" {
                        if let Some(TokenTree::Group(args)) = attr_tokens.get(1) {
                            on_serde(args.stream().into_iter().collect());
                        }
                    }
                }
                *pos += 2;
            }
            _ => return,
        }
    }
}

fn apply_container_attr(attrs: &mut ContainerAttrs, inner: Vec<TokenTree>) {
    let mut i = 0;
    while i < inner.len() {
        if let TokenTree::Ident(id) = &inner[i] {
            match id.to_string().as_str() {
                "untagged" => attrs.untagged = true,
                "tag" => attrs.tag = Some(expect_attr_string(&inner, &mut i)),
                "rename_all" => {
                    let case = expect_attr_string(&inner, &mut i);
                    if case != "lowercase" {
                        panic!("serde_derive stand-in only supports rename_all = \"lowercase\"");
                    }
                    attrs.rename_all_lowercase = true;
                }
                other => panic!("serde_derive stand-in: unsupported container attr `{other}`"),
            }
        }
        i += 1;
    }
}

/// After `ident` at `inner[i]`, consume `= "literal"` and return its value.
fn expect_attr_string(inner: &[TokenTree], i: &mut usize) -> String {
    match (inner.get(*i + 1), inner.get(*i + 2)) {
        (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) if eq.as_char() == '=' => {
            *i += 2;
            let raw = lit.to_string();
            raw.trim_matches('"').to_string()
        }
        _ => panic!("serde_derive: expected `= \"...\"` in serde attribute"),
    }
}

fn skip_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *pos += 1;
        // pub(crate), pub(super), ...
        if matches!(&tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

fn expect_ident(tokens: &[TokenTree], pos: &mut usize) -> String {
    match tokens.get(*pos) {
        Some(TokenTree::Ident(id)) => {
            *pos += 1;
            id.to_string()
        }
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn expect_group(
    tokens: &[TokenTree],
    pos: &mut usize,
    delim: Delimiter,
    ctx: &str,
) -> Vec<TokenTree> {
    match tokens.get(*pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == delim => {
            *pos += 1;
            g.stream().into_iter().collect()
        }
        other => panic!("serde_derive: expected braced body for {ctx}, found {other:?}"),
    }
}

/// Parse `name: Type, ...` named fields (types skipped by `<`-depth walk).
fn parse_fields(tokens: Vec<TokenTree>) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let mut rename = None;
        let mut default = false;
        let mut skip = false;
        parse_attrs(&tokens, &mut pos, |inner| {
            let mut i = 0;
            while i < inner.len() {
                if let TokenTree::Ident(id) = &inner[i] {
                    match id.to_string().as_str() {
                        "default" => default = true,
                        "skip" => skip = true,
                        "rename" => rename = Some(expect_attr_string(&inner, &mut i)),
                        other => {
                            panic!("serde_derive stand-in: unsupported field attr `{other}`")
                        }
                    }
                }
                i += 1;
            }
        });
        skip_visibility(&tokens, &mut pos);
        let ident = expect_ident(&tokens, &mut pos);
        match tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("serde_derive: expected `:` after field `{ident}`, found {other:?}"),
        }
        // Skip the type: everything until a comma at angle-bracket depth 0.
        // Parens/brackets arrive as atomic groups, so only `<`/`>` need
        // explicit depth tracking.
        let mut depth = 0i32;
        while let Some(tok) = tokens.get(pos) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
            pos += 1;
        }
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        fields.push(Field {
            ident,
            rename,
            default,
            skip,
        });
    }
    fields
}

fn parse_variants(tokens: Vec<TokenTree>) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        // Variant-level serde attrs are not used in this workspace.
        parse_attrs(&tokens, &mut pos, |_| {
            panic!("serde_derive stand-in: variant-level serde attrs unsupported")
        });
        let ident = expect_ident(&tokens, &mut pos);
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Newtype
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                pos += 1;
                VariantKind::Struct(parse_fields(inner))
            }
            _ => VariantKind::Unit,
        };
        if matches!(tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            pos += 1;
        }
        variants.push(Variant { ident, kind });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn variant_key(item: &Item, v: &Variant) -> String {
    if item.attrs.rename_all_lowercase {
        v.ident.to_lowercase()
    } else {
        v.ident.clone()
    }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let mut s =
                String::from("let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "fields.push((\"{key}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{ident})));\n",
                    key = f.key(),
                    ident = f.ident,
                ));
            }
            s.push_str("::serde::Value::Object(fields)");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let key = variant_key(item, v);
                let arm = match (&v.kind, &item.attrs) {
                    // Untagged: the variant vanishes from the output.
                    (VariantKind::Newtype, a) if a.untagged => format!(
                        "{name}::{v_id}(inner) => ::serde::Serialize::to_value(inner),\n",
                        v_id = v.ident,
                    ),
                    (VariantKind::Struct(fields), a) if a.untagged => {
                        struct_variant_ser(name, &v.ident, fields, None)
                    }
                    // Internally tagged.
                    (VariantKind::Unit, a) if a.tag.is_some() => {
                        let tag = a.tag.as_deref().unwrap();
                        format!(
                            "{name}::{v_id} => ::serde::Value::Object(vec![\
                             (\"{tag}\".to_string(), \
                             ::serde::Value::Str(\"{key}\".to_string()))]),\n",
                            v_id = v.ident,
                        )
                    }
                    (VariantKind::Struct(fields), a) if a.tag.is_some() => {
                        let tag = a.tag.as_deref().unwrap();
                        struct_variant_ser(name, &v.ident, fields, Some((tag, &key)))
                    }
                    // Externally tagged (serde default).
                    (VariantKind::Unit, _) => format!(
                        "{name}::{v_id} => ::serde::Value::Str(\"{key}\".to_string()),\n",
                        v_id = v.ident,
                    ),
                    (VariantKind::Newtype, _) => format!(
                        "{name}::{v_id}(inner) => ::serde::Value::Object(vec![\
                         (\"{key}\".to_string(), ::serde::Serialize::to_value(inner))]),\n",
                        v_id = v.ident,
                    ),
                    // Externally tagged struct variant: fields object
                    // wrapped under the variant key.
                    (VariantKind::Struct(fields), _) => format!(
                        "{name}::{v_id} {{ {bindings} }} => {{\n\
                         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                         {pushes}\
                         ::serde::Value::Object(vec![(\"{key}\".to_string(), \
                         ::serde::Value::Object(fields))])\n}}\n",
                        v_id = v.ident,
                        bindings = field_bindings(fields),
                        pushes = field_pushes(fields),
                    ),
                };
                arms.push_str(&arm);
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn field_bindings(fields: &[Field]) -> String {
    fields
        .iter()
        .map(|f| f.ident.as_str())
        .collect::<Vec<_>>()
        .join(", ")
}

fn field_pushes(fields: &[Field]) -> String {
    let mut s = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        s.push_str(&format!(
            "fields.push((\"{key}\".to_string(), ::serde::Serialize::to_value({ident})));\n",
            key = f.key(),
            ident = f.ident,
        ));
    }
    s
}

/// Serialize arm for a struct variant flattened into one object,
/// optionally carrying an internal tag as the first key.
fn struct_variant_ser(
    name: &str,
    v_ident: &str,
    fields: &[Field],
    tag: Option<(&str, &str)>,
) -> String {
    let tag_push = match tag {
        Some((tag_key, tag_val)) => format!(
            "fields.push((\"{tag_key}\".to_string(), \
             ::serde::Value::Str(\"{tag_val}\".to_string())));\n"
        ),
        None => String::new(),
    };
    format!(
        "{name}::{v_ident} {{ {bindings} }} => {{\n\
         let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
         {tag_push}{pushes}\
         ::serde::Value::Object(fields)\n}}\n",
        bindings = field_bindings(fields),
        pushes = field_pushes(fields),
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => format!(
            "let obj = ::serde::expect_object(value, \"{name}\")?;\n\
             Ok({name} {{\n{inits}}})",
            inits = field_inits(fields),
        ),
        Shape::Enum(variants) if item.attrs.untagged => {
            let mut tries = String::new();
            for v in variants {
                match &v.kind {
                    VariantKind::Newtype => tries.push_str(&format!(
                        "if let Ok(inner) = ::serde::Deserialize::from_value(value) \
                         {{ return Ok({name}::{v_id}(inner)); }}\n",
                        v_id = v.ident,
                    )),
                    VariantKind::Struct(fields) => tries.push_str(&format!(
                        "if let Ok(obj) = ::serde::expect_object(value, \"{name}\") {{\n\
                         let attempt = (|| -> Result<{name}, ::serde::DeError> {{\n\
                         Ok({name}::{v_id} {{\n{inits}}})\n}})();\n\
                         if let Ok(v) = attempt {{ return Ok(v); }}\n}}\n",
                        v_id = v.ident,
                        inits = field_inits(fields),
                    )),
                    VariantKind::Unit => tries.push_str(&format!(
                        "if matches!(value, ::serde::Value::Null) \
                         {{ return Ok({name}::{v_id}); }}\n",
                        v_id = v.ident,
                    )),
                }
            }
            format!(
                "{tries}Err(::serde::DeError::new(\
                 \"no variant of {name} matched the untagged value\"))"
            )
        }
        Shape::Enum(variants) => match &item.attrs.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let key = variant_key(item, v);
                    match &v.kind {
                        VariantKind::Unit => arms.push_str(&format!(
                            "\"{key}\" => Ok({name}::{v_id}),\n",
                            v_id = v.ident
                        )),
                        VariantKind::Struct(fields) => arms.push_str(&format!(
                            "\"{key}\" => Ok({name}::{v_id} {{\n{inits}}}),\n",
                            v_id = v.ident,
                            inits = field_inits(fields),
                        )),
                        VariantKind::Newtype => {
                            panic!("internally tagged newtype variants unsupported")
                        }
                    }
                }
                format!(
                    "let obj = ::serde::expect_object(value, \"{name}\")?;\n\
                     let tag = ::serde::de_tag(obj, \"{tag}\", \"{name}\")?;\n\
                     match tag {{\n{arms}\
                     other => Err(::serde::DeError::new(\
                     format!(\"unknown variant `{{other}}` of {name}\"))),\n}}"
                )
            }
            None => {
                // Externally tagged.
                let mut unit_arms = String::new();
                let mut keyed_arms = String::new();
                for v in variants {
                    let key = variant_key(item, v);
                    match &v.kind {
                        VariantKind::Unit => unit_arms.push_str(&format!(
                            "\"{key}\" => return Ok({name}::{v_id}),\n",
                            v_id = v.ident,
                        )),
                        VariantKind::Newtype => keyed_arms.push_str(&format!(
                            "\"{key}\" => return Ok({name}::{v_id}(\
                             ::serde::Deserialize::from_value(inner)?)),\n",
                            v_id = v.ident,
                        )),
                        VariantKind::Struct(fields) => keyed_arms.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let obj = ::serde::expect_object(inner, \"{name}\")?;\n\
                             return Ok({name}::{v_id} {{\n{inits}}});\n}}\n",
                            v_id = v.ident,
                            inits = field_inits(fields),
                        )),
                    }
                }
                format!(
                    "if let ::serde::Value::Str(s) = value {{\n\
                     match s.as_str() {{\n{unit_arms}_ => {{}}\n}}\n}}\n\
                     if let ::serde::Value::Object(o) = value {{\n\
                     if o.len() == 1 {{\n\
                     let (k, inner) = &o[0];\n\
                     match k.as_str() {{\n{keyed_arms}_ => {{}}\n}}\n}}\n}}\n\
                     Err(::serde::DeError::new(format!(\
                     \"invalid externally tagged value for {name}: {{}}\", \
                     ::serde::kind_name(value))))"
                )
            }
        },
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(value: &::serde::Value) \
         -> Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}

fn field_inits(fields: &[Field]) -> String {
    let mut s = String::new();
    for f in fields {
        if f.skip {
            s.push_str(&format!(
                "{ident}: ::core::default::Default::default(),\n",
                ident = f.ident
            ));
        } else if f.default {
            s.push_str(&format!(
                "{ident}: ::serde::de_field_default(obj, \"{key}\")?,\n",
                ident = f.ident,
                key = f.key(),
            ));
        } else {
            s.push_str(&format!(
                "{ident}: ::serde::de_field(obj, \"{key}\")?,\n",
                ident = f.ident,
                key = f.key(),
            ));
        }
    }
    s
}
