//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored `serde` [`Value`] tree to JSON text and parses
//! JSON text back into it. Two properties the workspace relies on:
//!
//! * floats always print with a decimal point or exponent, so the
//!   integer/float distinction survives a text round trip (untagged
//!   enums such as `Scalar`/`Value` depend on this);
//! * `{}` float formatting is Rust's shortest round-trip repr, so
//!   parsing the output recovers bit-identical values.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        // JSON has no NaN/Infinity; serde_json emits null.
        out.push_str("null");
        return;
    }
    let s = format!("{f}");
    out.push_str(&s);
    // Keep the float-ness visible in the text form.
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{0008}'),
                        Some(b'f') => s.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed by this workspace's
                            // data; map unpaired surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // byte walk always lands on boundaries).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| Error::new("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            // Integers that overflow i64 degrade to float, like serde_json
            // with arbitrary_precision off.
            match text.parse::<i64>() {
                Ok(i) => Ok(Value::Int(i)),
                Err(_) => text
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| Error::new(format!("invalid number `{text}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(3)),
            ("b".to_string(), Value::Float(3.0)),
            (
                "c".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("d".to_string(), Value::Str("x\"y\n".to_string())),
        ]);
        let s = to_string(&v).unwrap();
        assert_eq!(s, r#"{"a":3,"b":3.0,"c":[true,null],"d":"x\"y\n"}"#);
        assert_eq!(parse(&s).unwrap(), v);
    }

    #[test]
    fn float_int_distinction_survives() {
        let s = to_string(&Value::Float(2.0)).unwrap();
        assert_eq!(s, "2.0");
        assert_eq!(parse(&s).unwrap(), Value::Float(2.0));
        assert_eq!(parse("2").unwrap(), Value::Int(2));
    }

    #[test]
    fn floats_roundtrip_bitwise() {
        for f in [3.65, 1.0 / 3.0, 1e-300, -2.5e17, f64::MIN_POSITIVE] {
            let s = to_string(&Value::Float(f)).unwrap();
            match parse(&s).unwrap() {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits(), "{s}"),
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn pretty_output_shape() {
        let v = Value::Object(vec![("k".to_string(), Value::Array(vec![Value::Int(1)]))]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "{\n  \"k\": [\n    1\n  ]\n}");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 2").is_err());
    }
}
